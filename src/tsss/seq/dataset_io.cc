#include "tsss/seq/dataset_io.h"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

#include "tsss/common/crc32.h"

namespace tsss::seq {
namespace {

constexpr std::uint64_t kMagic = 0x5453535344415441ull;  // "TSSSDATA"
constexpr std::size_t kCrcBytes = sizeof(std::uint32_t);
/// Smallest possible per-series record: name_len u32 (0) + value_count
/// u64 (0) with no payload bytes.
constexpr std::uint64_t kMinSeriesBytes =
    sizeof(std::uint32_t) + sizeof(std::uint64_t);

class ChecksummedWriter {
 public:
  explicit ChecksummedWriter(std::ostream* os) : os_(os) {}

  template <typename T>
  void Put(T value) {
    PutBytes(&value, sizeof(T));
  }

  void PutBytes(const void* data, std::size_t size) {
    os_->write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    crc_ = Crc32Continue(crc_, data, size);
  }

  std::uint32_t crc() const { return crc_; }

 private:
  std::ostream* os_;
  std::uint32_t crc_ = 0;
};

/// Checksumming reader that knows how many payload bytes remain, so size
/// fields decoded from the input can be checked BEFORE they size a read or
/// an allocation.
class ChecksummedReader {
 public:
  ChecksummedReader(std::istream* is, std::uint64_t payload_bytes)
      : is_(is), remaining_(payload_bytes) {}

  template <typename T>
  bool Get(T* value) {
    return GetBytes(value, sizeof(T));
  }

  bool GetBytes(void* data, std::size_t size) {
    if (size > remaining_) return false;
    is_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!*is_) return false;
    remaining_ -= size;
    crc_ = Crc32Continue(crc_, data, size);
    return true;
  }

  /// Payload bytes not yet consumed (excludes the trailing CRC).
  std::uint64_t remaining() const { return remaining_; }

  std::uint32_t crc() const { return crc_; }

 private:
  std::istream* is_;
  std::uint64_t remaining_;
  std::uint32_t crc_ = 0;
};

}  // namespace

Status SaveDatasetToStream(std::ostream& out, const Dataset& dataset) {
  ChecksummedWriter w(&out);
  w.Put<std::uint64_t>(kMagic);
  w.Put<std::uint64_t>(dataset.size());
  for (storage::SeriesId id = 0; id < dataset.size(); ++id) {
    Result<std::string> name = dataset.Name(id);
    if (!name.ok()) return name.status();
    Result<std::span<const double>> values = dataset.Values(id);
    if (!values.ok()) return values.status();
    w.Put<std::uint32_t>(static_cast<std::uint32_t>(name->size()));
    w.PutBytes(name->data(), name->size());
    w.Put<std::uint64_t>(values->size());
    w.PutBytes(values->data(), values->size() * sizeof(double));
  }
  const std::uint32_t crc = w.crc();
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.flush();
  if (!out) return Status::IoError("dataset stream write failed");
  return Status::OK();
}

Status SaveDataset(const std::string& path, const Dataset& dataset) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  Status s = SaveDatasetToStream(file, dataset);
  if (!s.ok() && s.code() == StatusCode::kIoError) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return s;
}

Status LoadDatasetFromStream(std::istream& in, Dataset* dataset) {
  if (dataset->size() != 0) {
    return Status::FailedPrecondition("LoadDataset requires an empty dataset");
  }
  // Total stream size bounds every size/count field below; without it a
  // hostile header could demand an allocation of 2^64 values before the
  // first read ever fails.
  in.seekg(0, std::ios::end);
  const std::streamoff end_pos = in.tellg();
  in.seekg(0, std::ios::beg);
  if (end_pos < 0 || !in) {
    return Status::IoError("dataset stream is not seekable");
  }
  const auto total = static_cast<std::uint64_t>(end_pos);
  if (total < 2 * sizeof(std::uint64_t) + kCrcBytes) {
    return Status::Corruption("dataset input shorter than header + checksum");
  }
  ChecksummedReader r(&in, total - kCrcBytes);
  std::uint64_t magic = 0;
  if (!r.Get(&magic) || magic != kMagic) {
    return Status::Corruption("bad dataset magic");
  }
  std::uint64_t num_series = 0;
  if (!r.Get(&num_series)) return Status::Corruption("truncated dataset header");
  if (num_series > r.remaining() / kMinSeriesBytes) {
    return Status::Corruption(
        "dataset declares " + std::to_string(num_series) +
        " series but only " + std::to_string(r.remaining()) +
        " payload bytes remain");
  }
  for (std::uint64_t i = 0; i < num_series; ++i) {
    std::uint32_t name_len = 0;
    if (!r.Get(&name_len)) return Status::Corruption("truncated series name");
    if (name_len > r.remaining()) {
      return Status::Corruption("series name length " +
                                std::to_string(name_len) +
                                " exceeds the remaining input");
    }
    std::string name(name_len, '\0');
    if (name_len > 0 && !r.GetBytes(name.data(), name_len)) {
      return Status::Corruption("truncated series name bytes");
    }
    std::uint64_t count = 0;
    if (!r.Get(&count)) return Status::Corruption("truncated value count");
    // Guards both the allocation size and the count * sizeof(double)
    // multiplication (a count near 2^61 would wrap it to a tiny read).
    if (count > r.remaining() / sizeof(double)) {
      return Status::Corruption("series value count " + std::to_string(count) +
                                " exceeds the remaining input");
    }
    std::vector<double> values(count);
    if (count > 0 && !r.GetBytes(values.data(), count * sizeof(double))) {
      return Status::Corruption("truncated series values");
    }
    dataset->Add(std::move(name), values);
  }
  if (r.remaining() != 0) {
    return Status::Corruption("dataset has " + std::to_string(r.remaining()) +
                              " unconsumed bytes before its checksum");
  }
  const std::uint32_t computed = r.crc();
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in || stored != computed) {
    return Status::Corruption("dataset checksum mismatch");
  }
  return Status::OK();
}

Status LoadDataset(const std::string& path, Dataset* dataset) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  Status s = LoadDatasetFromStream(file, dataset);
  if (!s.ok() && s.code() == StatusCode::kCorruption) {
    return Status::Corruption(s.message() + " in '" + path + "'");
  }
  return s;
}

}  // namespace tsss::seq
