#include "tsss/seq/dataset_io.h"

#include <fstream>
#include <vector>

#include "tsss/common/crc32.h"

namespace tsss::seq {
namespace {

constexpr std::uint64_t kMagic = 0x5453535344415441ull;  // "TSSSDATA"

class ChecksummedWriter {
 public:
  explicit ChecksummedWriter(std::ostream* os) : os_(os) {}

  template <typename T>
  void Put(T value) {
    PutBytes(&value, sizeof(T));
  }

  void PutBytes(const void* data, std::size_t size) {
    os_->write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    crc_ = Crc32Continue(crc_, data, size);
  }

  std::uint32_t crc() const { return crc_; }

 private:
  std::ostream* os_;
  std::uint32_t crc_ = 0;
};

class ChecksummedReader {
 public:
  explicit ChecksummedReader(std::istream* is) : is_(is) {}

  template <typename T>
  bool Get(T* value) {
    return GetBytes(value, sizeof(T));
  }

  bool GetBytes(void* data, std::size_t size) {
    is_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!*is_) return false;
    crc_ = Crc32Continue(crc_, data, size);
    return true;
  }

  std::uint32_t crc() const { return crc_; }

 private:
  std::istream* is_;
  std::uint32_t crc_ = 0;
};

}  // namespace

Status SaveDataset(const std::string& path, const Dataset& dataset) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  ChecksummedWriter w(&file);
  w.Put<std::uint64_t>(kMagic);
  w.Put<std::uint64_t>(dataset.size());
  for (storage::SeriesId id = 0; id < dataset.size(); ++id) {
    Result<std::string> name = dataset.Name(id);
    if (!name.ok()) return name.status();
    Result<std::span<const double>> values = dataset.Values(id);
    if (!values.ok()) return values.status();
    w.Put<std::uint32_t>(static_cast<std::uint32_t>(name->size()));
    w.PutBytes(name->data(), name->size());
    w.Put<std::uint64_t>(values->size());
    w.PutBytes(values->data(), values->size() * sizeof(double));
  }
  const std::uint32_t crc = w.crc();
  file.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  file.flush();
  if (!file) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Status LoadDataset(const std::string& path, Dataset* dataset) {
  if (dataset->size() != 0) {
    return Status::FailedPrecondition("LoadDataset requires an empty dataset");
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  ChecksummedReader r(&file);
  std::uint64_t magic = 0;
  if (!r.Get(&magic) || magic != kMagic) {
    return Status::Corruption("bad dataset magic in '" + path + "'");
  }
  std::uint64_t num_series = 0;
  if (!r.Get(&num_series)) return Status::Corruption("truncated dataset header");
  for (std::uint64_t i = 0; i < num_series; ++i) {
    std::uint32_t name_len = 0;
    if (!r.Get(&name_len)) return Status::Corruption("truncated series name");
    std::string name(name_len, '\0');
    if (name_len > 0 && !r.GetBytes(name.data(), name_len)) {
      return Status::Corruption("truncated series name bytes");
    }
    std::uint64_t count = 0;
    if (!r.Get(&count)) return Status::Corruption("truncated value count");
    std::vector<double> values(count);
    if (count > 0 && !r.GetBytes(values.data(), count * sizeof(double))) {
      return Status::Corruption("truncated series values");
    }
    dataset->Add(std::move(name), values);
  }
  const std::uint32_t computed = r.crc();
  std::uint32_t stored = 0;
  file.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!file || stored != computed) {
    return Status::Corruption("dataset checksum mismatch in '" + path + "'");
  }
  return Status::OK();
}

}  // namespace tsss::seq
