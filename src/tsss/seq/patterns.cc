#include "tsss/seq/patterns.h"

#include <cmath>

#include "tsss/common/check.h"

namespace tsss::seq {
namespace {

/// Normalised time for sample i of n: t in [0, 1].
double T(std::size_t i, std::size_t n) {
  return static_cast<double>(i) / static_cast<double>(n - 1);
}

}  // namespace

geom::Vec RampPattern(std::size_t n) {
  TSSS_DCHECK(n >= 2);
  geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = T(i, n);
  return v;
}

geom::Vec VPattern(std::size_t n) {
  TSSS_DCHECK(n >= 2);
  geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::fabs(T(i, n) - 0.5) * 2.0;
  return v;
}

geom::Vec PeakPattern(std::size_t n) {
  TSSS_DCHECK(n >= 2);
  geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 - std::fabs(T(i, n) - 0.5) * 2.0;
  }
  return v;
}

geom::Vec SinePattern(std::size_t n, double cycles) {
  TSSS_DCHECK(n >= 2);
  geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * M_PI * cycles * T(i, n));
  }
  return v;
}

geom::Vec StepPattern(std::size_t n, double at) {
  TSSS_DCHECK(n >= 2);
  geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = T(i, n) < at ? 0.0 : 1.0;
  return v;
}

geom::Vec HeadAndShouldersPattern(std::size_t n) {
  TSSS_DCHECK(n >= 2);
  geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = T(i, n);
    // Three lobes at t = 1/6, 1/2, 5/6; the head (middle) is tallest.
    const double left = 0.6 * std::exp(-std::pow((t - 1.0 / 6.0) / 0.09, 2.0));
    const double head = 1.0 * std::exp(-std::pow((t - 0.5) / 0.09, 2.0));
    const double right = 0.6 * std::exp(-std::pow((t - 5.0 / 6.0) / 0.09, 2.0));
    v[i] = left + head + right;
  }
  return v;
}

geom::Vec SaturationPattern(std::size_t n, double rate) {
  TSSS_DCHECK(n >= 2);
  geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 1.0 - std::exp(-rate * T(i, n));
  return v;
}

geom::Vec CupPattern(std::size_t n) {
  TSSS_DCHECK(n >= 2);
  geom::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = T(i, n);
    if (t < 0.3) {
      const double u = t / 0.3;  // 1 -> 0, smooth (cosine easing)
      v[i] = 0.5 * (1.0 + std::cos(M_PI * u));
    } else if (t < 0.7) {
      v[i] = 0.0;  // flat bottom
    } else {
      const double u = (t - 0.7) / 0.3;  // 0 -> 1, smooth
      v[i] = 0.5 * (1.0 - std::cos(M_PI * u));
    }
  }
  return v;
}

}  // namespace tsss::seq
