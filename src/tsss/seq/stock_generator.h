#ifndef TSSS_SEQ_STOCK_GENERATOR_H_
#define TSSS_SEQ_STOCK_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/seq/time_series.h"

namespace tsss::seq {

/// Parameters of the synthetic stock-market generator.
///
/// The paper evaluates on the closing prices of 1000 Hong Kong companies,
/// July 1995 - October 1996 (~650k values). That data set is proprietary, so
/// we substitute a geometric-Brownian-motion market with the same shape
/// (DESIGN.md, Section 2): heterogeneous start prices spanning two orders of
/// magnitude (which is what makes *shifting* matter), heterogeneous
/// volatility proportional to price (which is what makes *scaling* matter),
/// sector-correlated returns, and occasional volatility regimes.
struct StockMarketConfig {
  std::size_t num_companies = 1000;
  std::size_t values_per_company = 650;
  std::size_t num_sectors = 12;
  std::uint64_t seed = 19990601;

  double min_start_price = 0.5;    ///< HKD penny stocks
  double max_start_price = 150.0;  ///< blue chips
  double drift_mean = 0.0004;      ///< per-step log-return drift mean
  double drift_stddev = 0.0015;
  double min_volatility = 0.006;   ///< per-step log-return sigma
  double max_volatility = 0.035;
  double sector_volatility = 0.008;    ///< common sector factor sigma
  double min_sector_beta = 0.3;
  double max_sector_beta = 1.4;
  double regime_switch_prob = 0.01;    ///< chance per step to toggle regimes
  double regime_volatility_boost = 2.5;
};

/// Generates the synthetic market. Deterministic for a fixed config.
/// Company c is named "HK<c>".
std::vector<TimeSeries> GenerateStockMarket(const StockMarketConfig& config);

/// Convenience: one GBM price path (no sector structure).
TimeSeries GenerateGbmPath(std::string name, std::size_t length,
                           double start_price, double drift, double volatility,
                           std::uint64_t seed);

}  // namespace tsss::seq

#endif  // TSSS_SEQ_STOCK_GENERATOR_H_
