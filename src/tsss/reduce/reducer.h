#ifndef TSSS_REDUCE_REDUCER_H_
#define TSSS_REDUCE_REDUCER_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "tsss/common/status.h"
#include "tsss/geom/vec.h"

namespace tsss::reduce {

/// A linear, contractive dimension reducer R: R^n -> R^k.
///
/// The index correctness proof (DESIGN.md, Section 5) requires exactly two
/// properties of every implementation, both enforced by property tests:
///
///  1. Linearity: R(a*x + y) = a*R(x) + R(y). This is what lets the query's
///     SE-line map to a line in the reduced space.
///  2. Contraction: ||R(x)|| <= ||x||, hence reduced distances lower-bound
///     original distances and pruning causes no false dismissals.
class Reducer {
 public:
  virtual ~Reducer() = default;

  /// Dimensionality of the input vectors this reducer accepts.
  virtual std::size_t input_dim() const = 0;

  /// Dimensionality of the reduced vectors it produces.
  virtual std::size_t output_dim() const = 0;

  /// Reduces `in` (size input_dim) into `out` (size output_dim).
  virtual void Reduce(std::span<const double> in, std::span<double> out) const = 0;

  /// Human-readable name, e.g. "dft(n=128,fc=3)".
  virtual std::string Name() const = 0;

  /// Convenience allocation-returning overload.
  geom::Vec Apply(std::span<const double> in) const {
    geom::Vec out(output_dim());
    Reduce(in, out);
    return out;
  }
};

/// Which reducer family to instantiate.
enum class ReducerKind : int {
  kIdentity = 0,
  kDft = 1,
  kPaa = 2,
  kHaar = 3,
};

std::string_view ReducerKindToString(ReducerKind kind);

/// Creates a reducer of the given family.
///
/// `input_dim` is the window length n; `output_dim` the reduced
/// dimensionality k. Constraints:
///  * kIdentity: output_dim == input_dim (0 means "use input_dim").
///  * kDft:      output_dim even (two reals per Fourier coefficient) and
///               output_dim/2 kept coefficients must exist above DC:
///               output_dim/2 <= (input_dim-1)/2 is not required, but
///               1 + output_dim/2 <= input_dim must hold.
///  * kPaa:      output_dim <= input_dim.
///  * kHaar:     input_dim a power of two, output_dim <= input_dim.
Result<std::unique_ptr<Reducer>> MakeReducer(ReducerKind kind,
                                             std::size_t input_dim,
                                             std::size_t output_dim);

}  // namespace tsss::reduce

#endif  // TSSS_REDUCE_REDUCER_H_
