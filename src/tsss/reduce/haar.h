#ifndef TSSS_REDUCE_HAAR_H_
#define TSSS_REDUCE_HAAR_H_

#include <cstddef>

#include "tsss/reduce/reducer.h"

namespace tsss::reduce {

/// Orthonormal Haar wavelet reducer (the paper cites wavelet-based dimension
/// reduction, Chan & Fu [14]).
///
/// Computes the full orthonormal Haar transform of the window (length must be
/// a power of two) and keeps the first `k` coefficients in coarse-to-fine
/// order: the overall average first, then detail coefficients of increasing
/// resolution. Truncating an orthonormal basis expansion is linear and
/// contractive, satisfying the Reducer contract.
class HaarReducer final : public Reducer {
 public:
  /// Requires n a power of two and 1 <= k <= n.
  HaarReducer(std::size_t n, std::size_t k);

  std::size_t input_dim() const override { return n_; }
  std::size_t output_dim() const override { return k_; }
  void Reduce(std::span<const double> in, std::span<double> out) const override;
  std::string Name() const override;

 private:
  std::size_t n_;
  std::size_t k_;
};

}  // namespace tsss::reduce

#endif  // TSSS_REDUCE_HAAR_H_
