#include "tsss/reduce/reducer.h"

#include <string>

#include "tsss/common/check.h"
#include "tsss/common/math_utils.h"
#include "tsss/reduce/dft.h"
#include "tsss/reduce/haar.h"
#include "tsss/reduce/identity.h"
#include "tsss/reduce/verify.h"
#include "tsss/reduce/paa.h"

namespace tsss::reduce {

std::string_view ReducerKindToString(ReducerKind kind) {
  switch (kind) {
    case ReducerKind::kIdentity:
      return "identity";
    case ReducerKind::kDft:
      return "dft";
    case ReducerKind::kPaa:
      return "paa";
    case ReducerKind::kHaar:
      return "haar";
  }
  return "unknown";
}

namespace {

Result<std::unique_ptr<Reducer>> MakeReducerImpl(ReducerKind kind,
                                                 std::size_t input_dim,
                                                 std::size_t output_dim) {
  if (input_dim == 0) {
    return Status::InvalidArgument("reducer input_dim must be positive");
  }
  switch (kind) {
    case ReducerKind::kIdentity: {
      if (output_dim != 0 && output_dim != input_dim) {
        return Status::InvalidArgument(
            "identity reducer requires output_dim == input_dim");
      }
      return std::unique_ptr<Reducer>(new IdentityReducer(input_dim));
    }
    case ReducerKind::kDft: {
      if (output_dim == 0 || output_dim % 2 != 0) {
        return Status::InvalidArgument(
            "dft reducer requires a positive even output_dim (2 reals per "
            "coefficient), got " +
            std::to_string(output_dim));
      }
      const std::size_t num_coeffs = output_dim / 2;
      // Coefficients 1 .. num_coeffs (DC skipped; it is zero after the
      // SE-transform).
      if (1 + num_coeffs > input_dim) {
        return Status::InvalidArgument(
            "dft reducer: not enough non-DC coefficients in a window of "
            "length " +
            std::to_string(input_dim));
      }
      return std::unique_ptr<Reducer>(new DftReducer(input_dim, num_coeffs, 1));
    }
    case ReducerKind::kPaa: {
      if (output_dim == 0 || output_dim > input_dim) {
        return Status::InvalidArgument(
            "paa reducer requires 1 <= output_dim <= input_dim");
      }
      return std::unique_ptr<Reducer>(new PaaReducer(input_dim, output_dim));
    }
    case ReducerKind::kHaar: {
      if (!IsPowerOfTwo(input_dim)) {
        return Status::InvalidArgument(
            "haar reducer requires a power-of-two input_dim, got " +
            std::to_string(input_dim));
      }
      if (output_dim == 0 || output_dim > input_dim) {
        return Status::InvalidArgument(
            "haar reducer requires 1 <= output_dim <= input_dim");
      }
      return std::unique_ptr<Reducer>(new HaarReducer(input_dim, output_dim));
    }
  }
  return Status::InvalidArgument("unknown reducer kind");
}

}  // namespace

Result<std::unique_ptr<Reducer>> MakeReducer(ReducerKind kind,
                                             std::size_t input_dim,
                                             std::size_t output_dim) {
  Result<std::unique_ptr<Reducer>> made =
      MakeReducerImpl(kind, input_dim, output_dim);
#if TSSS_DCHECK_IS_ON
  // Debug-build self-check: a reducer that is not contractive silently breaks
  // the no-false-dismissal guarantee, so refuse to hand one out. Cheap (a few
  // reduce calls) and only at construction, never per query.
  if (made.ok()) {
    Status self_check = VerifyLowerBound(**made, /*seed=*/0x5EED, /*samples=*/8);
    if (!self_check.ok()) return self_check;
  }
#endif
  return made;
}

}  // namespace tsss::reduce
