#ifndef TSSS_REDUCE_IDENTITY_H_
#define TSSS_REDUCE_IDENTITY_H_

#include <cstddef>

#include "tsss/reduce/reducer.h"

namespace tsss::reduce {

/// The trivial reducer: out == in. Useful for exact (unreduced) indexing and
/// as a baseline in the reducer ablation.
class IdentityReducer final : public Reducer {
 public:
  explicit IdentityReducer(std::size_t n) : n_(n) {}

  std::size_t input_dim() const override { return n_; }
  std::size_t output_dim() const override { return n_; }
  void Reduce(std::span<const double> in, std::span<double> out) const override;
  std::string Name() const override;

 private:
  std::size_t n_;
};

}  // namespace tsss::reduce

#endif  // TSSS_REDUCE_IDENTITY_H_
