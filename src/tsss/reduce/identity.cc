#include "tsss/reduce/identity.h"

#include <algorithm>
#include <sstream>

#include "tsss/common/check.h"

namespace tsss::reduce {

void IdentityReducer::Reduce(std::span<const double> in,
                             std::span<double> out) const {
  TSSS_DCHECK(in.size() == n_);
  TSSS_DCHECK(out.size() == n_);
  std::copy(in.begin(), in.end(), out.begin());
}

std::string IdentityReducer::Name() const {
  std::ostringstream os;
  os << "identity(n=" << n_ << ")";
  return os.str();
}

}  // namespace tsss::reduce
