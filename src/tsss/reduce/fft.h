#ifndef TSSS_REDUCE_FFT_H_
#define TSSS_REDUCE_FFT_H_

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "tsss/common/status.h"

namespace tsss::reduce {

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// `data.size()` must be a power of two. Forward transform computes
/// X_k = sum_j x_j exp(-2*pi*i*j*k/n) (unnormalised); the inverse applies the
/// conjugate transform and divides by n, so Inverse(Forward(x)) == x.
Status Fft(std::span<std::complex<double>> data);
Status InverseFft(std::span<std::complex<double>> data);

/// Forward FFT of a real signal (power-of-two length), returning the full
/// complex spectrum, *orthonormally* scaled by 1/sqrt(n) so that Parseval
/// holds with equality: sum |x_j|^2 == sum |X_k|^2.
Result<std::vector<std::complex<double>>> RealFftOrthonormal(
    std::span<const double> signal);

}  // namespace tsss::reduce

#endif  // TSSS_REDUCE_FFT_H_
