#include "tsss/reduce/haar.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "tsss/common/check.h"
#include "tsss/common/math_utils.h"

namespace tsss::reduce {

HaarReducer::HaarReducer(std::size_t n, std::size_t k) : n_(n), k_(k) {
  TSSS_DCHECK(IsPowerOfTwo(n_));
  TSSS_DCHECK(k_ >= 1);
  TSSS_DCHECK(k_ <= n_);
}

void HaarReducer::Reduce(std::span<const double> in, std::span<double> out) const {
  TSSS_DCHECK(in.size() == n_);
  TSSS_DCHECK(out.size() == k_);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> buf(in.begin(), in.end());
  std::vector<double> tmp(n_);
  // After each pass the first half holds the (coarser) approximation and the
  // second half the detail coefficients of that level; recursing on the first
  // half leaves the buffer in coarse-to-fine order:
  //   [average, detail_coarsest, detail_next (x2), detail_next (x4), ...]
  // TSSS_HOT_BEGIN(haar_reduce) — the wavelet passes; the scratch buffers
  // above are the allowed setup cost (ROADMAP item 1 moves them caller-side).
  for (std::size_t len = n_; len > 1; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[i] = (buf[2 * i] + buf[2 * i + 1]) * inv_sqrt2;
      tmp[half + i] = (buf[2 * i] - buf[2 * i + 1]) * inv_sqrt2;
    }
    for (std::size_t i = 0; i < len; ++i) buf[i] = tmp[i];
  }
  for (std::size_t i = 0; i < k_; ++i) out[i] = buf[i];
  // TSSS_HOT_END(haar_reduce)
}

std::string HaarReducer::Name() const {
  std::ostringstream os;
  os << "haar(n=" << n_ << ",k=" << k_ << ")";
  return os.str();
}

}  // namespace tsss::reduce
