#ifndef TSSS_REDUCE_DFT_H_
#define TSSS_REDUCE_DFT_H_

#include <cstddef>
#include <vector>

#include "tsss/reduce/reducer.h"

namespace tsss::reduce {

/// Orthonormal Discrete Fourier Transform reducer (paper, Section 7;
/// following [1, 2] it keeps the first few Fourier coefficients).
///
/// The k-th orthonormal DFT coefficient of x in R^n is
///   X_k = (1/sqrt(n)) * sum_j x_j * exp(-2*pi*i*j*k/n),
/// and this reducer emits (Re X_k, Im X_k) for k = first_coeff ..
/// first_coeff + num_coeffs - 1. By Parseval the map is an orthogonal
/// projection composed with an isometry, hence linear and contractive.
///
/// Because indexed points are SE-transformed (zero mean), their DC
/// coefficient X_0 is identically zero, so the default first_coeff is 1:
/// "three Fourier coefficients -> R*-tree dimension 6" matches the paper
/// with num_coeffs = 3.
class DftReducer final : public Reducer {
 public:
  /// Requires n >= 1, num_coeffs >= 1, first_coeff + num_coeffs <= n.
  DftReducer(std::size_t n, std::size_t num_coeffs, std::size_t first_coeff = 1);

  std::size_t input_dim() const override { return n_; }
  std::size_t output_dim() const override { return 2 * num_coeffs_; }
  void Reduce(std::span<const double> in, std::span<double> out) const override;
  std::string Name() const override;

  std::size_t first_coeff() const { return first_coeff_; }
  std::size_t num_coeffs() const { return num_coeffs_; }

 private:
  std::size_t n_;
  std::size_t num_coeffs_;
  std::size_t first_coeff_;
  // Precomputed cos/sin tables: row per kept coefficient, column per sample,
  // already scaled by 1/sqrt(n).
  std::vector<std::vector<double>> cos_;
  std::vector<std::vector<double>> sin_;
};

}  // namespace tsss::reduce

#endif  // TSSS_REDUCE_DFT_H_
