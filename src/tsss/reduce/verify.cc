#include "tsss/reduce/verify.h"

#include <cmath>
#include <string>

#include "tsss/common/rng.h"
#include "tsss/geom/vec.h"

namespace tsss::reduce {

namespace {

geom::Vec RandomVec(Rng& rng, std::size_t n, double scale) {
  geom::Vec v(n);
  for (auto& x : v) x = rng.Uniform(-scale, scale);
  return v;
}

}  // namespace

Status VerifyLowerBound(const Reducer& reducer, std::uint64_t seed,
                        int samples, double tol) {
  const std::size_t n = reducer.input_dim();
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    // Mix magnitudes so rounding behaves differently across samples.
    const double scale = (i % 3 == 0) ? 1.0 : (i % 3 == 1 ? 100.0 : 1e-3);
    geom::Vec x = RandomVec(rng, n, scale);
    geom::Vec y;
    if (i % 4 == 0) {
      // Adversarial pair: y is a scaled + shifted copy of x, the exact family
      // of pairs the paper's SE-queries compare.
      const double a = rng.Uniform(-3.0, 3.0);
      const double b = rng.Uniform(-10.0, 10.0);
      y.resize(n);
      for (std::size_t d = 0; d < n; ++d) y[d] = a * x[d] + b;
    } else {
      y = RandomVec(rng, n, scale);
    }

    const geom::Vec rx = reducer.Apply(x);
    const geom::Vec ry = reducer.Apply(y);
    const double original = geom::Distance(x, y);
    const double reduced = geom::Distance(rx, ry);
    // The tolerance scales with the distance magnitude to absorb rounding in
    // the transform itself.
    if (reduced > original + tol * (1.0 + original)) {
      return Status::FailedPrecondition(
          reducer.Name() + " is not contractive: reduced distance " +
          std::to_string(reduced) + " > original " + std::to_string(original) +
          " (sample " + std::to_string(i) + ", seed " + std::to_string(seed) +
          ")");
    }

    // Linearity: R(a*x + y) == a*R(x) + R(y).
    const double a = rng.Uniform(-2.0, 2.0);
    geom::Vec combo(n);
    for (std::size_t d = 0; d < n; ++d) combo[d] = a * x[d] + y[d];
    const geom::Vec r_combo = reducer.Apply(combo);
    const std::size_t k = reducer.output_dim();
    double err = 0.0;
    double mag = 0.0;
    for (std::size_t d = 0; d < k; ++d) {
      const double expect = a * rx[d] + ry[d];
      err = std::max(err, std::abs(r_combo[d] - expect));
      mag = std::max(mag, std::abs(expect));
    }
    if (err > tol * (1.0 + mag)) {
      return Status::FailedPrecondition(
          reducer.Name() + " is not linear: |R(a*x+y) - (a*R(x)+R(y))| = " +
          std::to_string(err) + " (sample " + std::to_string(i) + ", seed " +
          std::to_string(seed) + ")");
    }
  }
  return Status::OK();
}

}  // namespace tsss::reduce
