#include "tsss/reduce/paa.h"

#include <cmath>
#include <sstream>

#include "tsss/common/check.h"

namespace tsss::reduce {

PaaReducer::PaaReducer(std::size_t n, std::size_t k) : n_(n), k_(k) {
  TSSS_DCHECK(k_ >= 1);
  TSSS_DCHECK(k_ <= n_);
  seg_start_.resize(k_ + 1);
  seg_scale_.resize(k_);
  // Distribute n elements over k segments as evenly as possible.
  const std::size_t base = n_ / k_;
  const std::size_t extra = n_ % k_;
  std::size_t pos = 0;
  for (std::size_t s = 0; s < k_; ++s) {
    seg_start_[s] = pos;
    const std::size_t len = base + (s < extra ? 1 : 0);
    seg_scale_[s] = 1.0 / std::sqrt(static_cast<double>(len));
    pos += len;
  }
  seg_start_[k_] = pos;
  TSSS_DCHECK(pos == n_);
}

void PaaReducer::Reduce(std::span<const double> in, std::span<double> out) const {
  TSSS_DCHECK(in.size() == n_);
  TSSS_DCHECK(out.size() == k_);
  // TSSS_HOT_BEGIN(paa_reduce)
  for (std::size_t s = 0; s < k_; ++s) {
    double acc = 0.0;
    for (std::size_t j = seg_start_[s]; j < seg_start_[s + 1]; ++j) acc += in[j];
    out[s] = acc * seg_scale_[s];
  }
  // TSSS_HOT_END(paa_reduce)
}

std::string PaaReducer::Name() const {
  std::ostringstream os;
  os << "paa(n=" << n_ << ",k=" << k_ << ")";
  return os.str();
}

}  // namespace tsss::reduce
