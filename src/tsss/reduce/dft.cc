#include "tsss/reduce/dft.h"

#include <cmath>
#include <sstream>

#include "tsss/common/check.h"

namespace tsss::reduce {

DftReducer::DftReducer(std::size_t n, std::size_t num_coeffs, std::size_t first_coeff)
    : n_(n), num_coeffs_(num_coeffs), first_coeff_(first_coeff) {
  TSSS_DCHECK(n_ >= 1);
  TSSS_DCHECK(num_coeffs_ >= 1);
  TSSS_DCHECK(first_coeff_ + num_coeffs_ <= n_);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n_));
  cos_.resize(num_coeffs_);
  sin_.resize(num_coeffs_);
  for (std::size_t c = 0; c < num_coeffs_; ++c) {
    const std::size_t k = first_coeff_ + c;
    cos_[c].resize(n_);
    sin_[c].resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      const double angle = -2.0 * M_PI * static_cast<double>(j) *
                           static_cast<double>(k) / static_cast<double>(n_);
      cos_[c][j] = scale * std::cos(angle);
      sin_[c][j] = scale * std::sin(angle);
    }
  }
}

void DftReducer::Reduce(std::span<const double> in, std::span<double> out) const {
  TSSS_DCHECK(in.size() == n_);
  TSSS_DCHECK(out.size() == output_dim());
  // TSSS_HOT_BEGIN(dft_reduce) — per-window reduction; runs once per indexed
  // window at build time and once per candidate at query time.
  for (std::size_t c = 0; c < num_coeffs_; ++c) {
    double re = 0.0;
    double im = 0.0;
    const auto& cos_row = cos_[c];
    const auto& sin_row = sin_[c];
    for (std::size_t j = 0; j < n_; ++j) {
      re += cos_row[j] * in[j];
      im += sin_row[j] * in[j];
    }
    out[2 * c] = re;
    out[2 * c + 1] = im;
  }
  // TSSS_HOT_END(dft_reduce)
}

std::string DftReducer::Name() const {
  std::ostringstream os;
  os << "dft(n=" << n_ << ",fc=" << num_coeffs_ << ",first=" << first_coeff_ << ")";
  return os.str();
}

}  // namespace tsss::reduce
