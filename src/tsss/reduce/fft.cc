#include "tsss/reduce/fft.h"

#include <cmath>

#include "tsss/common/math_utils.h"

namespace tsss::reduce {
namespace {

Status FftImpl(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return Status::InvalidArgument("FFT of empty span");
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("FFT length must be a power of two, got " +
                                   std::to_string(n));
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> a = data[i + k];
        const std::complex<double> b = data[i + k + len / 2] * w;
        data[i + k] = a + b;
        data[i + k + len / 2] = a - b;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
  return Status::OK();
}

}  // namespace

Status Fft(std::span<std::complex<double>> data) { return FftImpl(data, false); }

Status InverseFft(std::span<std::complex<double>> data) {
  return FftImpl(data, true);
}

Result<std::vector<std::complex<double>>> RealFftOrthonormal(
    std::span<const double> signal) {
  std::vector<std::complex<double>> spectrum(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) spectrum[i] = signal[i];
  Status s = Fft(spectrum);
  if (!s.ok()) return s;
  const double scale = 1.0 / std::sqrt(static_cast<double>(signal.size()));
  for (auto& x : spectrum) x *= scale;
  return spectrum;
}

}  // namespace tsss::reduce
