#ifndef TSSS_REDUCE_PAA_H_
#define TSSS_REDUCE_PAA_H_

#include <cstddef>
#include <vector>

#include "tsss/reduce/reducer.h"

namespace tsss::reduce {

/// Piecewise Aggregate Approximation reducer.
///
/// Splits the window into `k` contiguous segments (lengths differing by at
/// most one) and emits, per segment s of length L_s,
///   out_s = (1 / sqrt(L_s)) * sum_{j in s} x_j = sqrt(L_s) * mean_s(x).
///
/// With this scaling the map is the orthogonal projection onto the
/// orthonormal family of normalised segment indicators, so it is linear and
/// contractive (see Reducer contract).
class PaaReducer final : public Reducer {
 public:
  /// Requires 1 <= k <= n.
  PaaReducer(std::size_t n, std::size_t k);

  std::size_t input_dim() const override { return n_; }
  std::size_t output_dim() const override { return k_; }
  void Reduce(std::span<const double> in, std::span<double> out) const override;
  std::string Name() const override;

 private:
  std::size_t n_;
  std::size_t k_;
  std::vector<std::size_t> seg_start_;  ///< k_+1 boundaries
  std::vector<double> seg_scale_;       ///< 1/sqrt(L_s) per segment
};

}  // namespace tsss::reduce

#endif  // TSSS_REDUCE_PAA_H_
