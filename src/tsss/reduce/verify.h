#ifndef TSSS_REDUCE_VERIFY_H_
#define TSSS_REDUCE_VERIFY_H_

#include <cstdint>

#include "tsss/common/status.h"
#include "tsss/reduce/reducer.h"

namespace tsss::reduce {

/// Randomized self-check of the two properties the pruning proof needs from
/// every reducer (reducer.h):
///
///  1. Lower bounding (contraction):
///       dist(R(x), R(y)) <= dist(x, y) + tol
///     for random pairs, including adversarial pairs differing by scaling
///     and shifting. If this fails, pruning can cause false dismissals and
///     every "exact" query answer is suspect.
///  2. Linearity: R(a*x + y) = a*R(x) + R(y) up to tol.
///
/// Deterministic given `seed`; draws `samples` random pairs. Returns the
/// first violation as a FailedPrecondition status quoting the offending
/// distances. Cost is O(samples * reduce); meant for setup paths and tests,
/// not per-query.
Status VerifyLowerBound(const Reducer& reducer, std::uint64_t seed,
                        int samples, double tol = 1e-9);

}  // namespace tsss::reduce

#endif  // TSSS_REDUCE_VERIFY_H_
