#include "tsss/common/math_utils.h"

#include <algorithm>

namespace tsss {

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return KahanSum(values) / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) { return std::sqrt(Variance(values)); }

double KahanSum(std::span<const double> values) {
  double sum = 0.0;
  double comp = 0.0;
  for (double v : values) {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double PercentileOfSorted(std::span<const double> sorted, double pct) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double p = Clamp(pct, 0.0, 100.0) / 100.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::size_t NextPowerOfTwo(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace tsss
