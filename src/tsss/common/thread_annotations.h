#ifndef TSSS_COMMON_THREAD_ANNOTATIONS_H_
#define TSSS_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (the LevelDB/Abseil convention).
//
// Locking discipline that used to live only in comments ("requires mu_
// held", "guards the file cursor") becomes machine-checked: a Clang build
// with TSSS_EXTRA_WARNINGS=ON gets -Wthread-safety, and TSSS_WERROR=ON
// promotes every violation - an unguarded access to a TSSS_GUARDED_BY
// member, a call to a TSSS_REQUIRES function without the lock, a
// double-acquire of a TSSS_EXCLUDES lock - into a compile error.
//
// The attributes only exist on Clang; every macro expands to nothing on
// other compilers, so GCC builds are unaffected. The analysis tracks
// capabilities through the annotated tsss::Mutex / tsss::MutexLock wrappers
// in common/mutex.h (std::mutex itself carries no attributes and is
// invisible to it).
//
// Usage summary:
//   TSSS_GUARDED_BY(mu)   on a data member: all reads and writes require mu.
//   TSSS_PT_GUARDED_BY(mu) on a pointer member: the pointee requires mu.
//   TSSS_REQUIRES(mu)     on a function: caller must hold mu.
//   TSSS_EXCLUDES(mu)     on a function: caller must NOT hold mu (the
//                         function acquires it itself; catches deadlocks).
//   TSSS_ACQUIRE/RELEASE  on lock/unlock-shaped functions.
//   TSSS_NO_THREAD_SAFETY_ANALYSIS escape hatch; every use needs a comment.

#if defined(__clang__)
#define TSSS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define TSSS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on non-Clang
#endif

#define TSSS_CAPABILITY(x) TSSS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define TSSS_SCOPED_CAPABILITY TSSS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define TSSS_GUARDED_BY(x) TSSS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define TSSS_PT_GUARDED_BY(x) TSSS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define TSSS_ACQUIRED_BEFORE(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define TSSS_ACQUIRED_AFTER(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define TSSS_REQUIRES(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define TSSS_REQUIRES_SHARED(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define TSSS_ACQUIRE(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define TSSS_ACQUIRE_SHARED(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define TSSS_RELEASE(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define TSSS_RELEASE_SHARED(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TSSS_TRY_ACQUIRE(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TSSS_EXCLUDES(...) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define TSSS_ASSERT_CAPABILITY(x) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define TSSS_RETURN_CAPABILITY(x) \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define TSSS_NO_THREAD_SAFETY_ANALYSIS \
  TSSS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // TSSS_COMMON_THREAD_ANNOTATIONS_H_
