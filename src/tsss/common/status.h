#ifndef TSSS_COMMON_STATUS_H_
#define TSSS_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tsss {

/// Canonical error categories for the library. Modelled after the usual
/// database-engine status codes; the library never throws exceptions.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kCorruption = 7,
  kIoError = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// [[nodiscard]]: ignoring a returned Status swallows an error. Call sites
/// that genuinely do not care must write `(void)DoThing();` with a
/// `// discard-ok: <why>` comment — tools/tsss_lint rejects the cast alone.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Value-or-error holder, in the spirit of absl::StatusOr.
///
/// A Result is either an OK status plus a value, or a non-OK status. Accessing
/// the value of a failed Result aborts the process (programming error).
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// dropped error (and a dropped value).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value: success.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status: failure.
  Result(Status status) : data_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(data_).ok()) {
      // An OK status carries no value; treat as internal error.
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the status: OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(data_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(data_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> data_;
};

namespace internal {
/// Aborts the process with a message describing `status`. Out-of-line so that
/// Result<T>::value() stays small.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(data_));
}

}  // namespace tsss

#endif  // TSSS_COMMON_STATUS_H_
