#ifndef TSSS_COMMON_CHECK_H_
#define TSSS_COMMON_CHECK_H_

// Contract-checking macros for the library.
//
// Policy (see DESIGN.md, "Verification & static analysis"):
//
//  * TSSS_CHECK(cond)        - always-on invariant. Aborts with file:line and
//                              the stringified condition. Use for contracts
//                              whose violation means memory corruption or a
//                              wrong answer is imminent and that are cheap to
//                              test (O(1) off the hot path).
//  * TSSS_DCHECK(cond)       - debug-only invariant. Compiled out of Release
//                              hot paths (NDEBUG) unless TSSS_FORCE_DCHECKS
//                              is defined (the sanitizer presets define it so
//                              instrumented builds keep full checking).
//  * TSSS_DCHECK_FINITE(x)   - debug-only check that a floating-point value
//                              is finite (catches NaN/inf poisoning before it
//                              propagates into MBRs and prune decisions).
//  * TSSS_CHECK_OK(status)   - always-on check that a Status is OK; prints
//                              the status message on failure.
//
// All failures funnel through tsss::internal::CheckFailed, which writes one
// line to stderr and aborts - the library never throws, and a violated
// invariant must not be recoverable (the paper's no-false-dismissal guarantee
// is already gone by then).

#include <cmath>

#include "tsss/common/status.h"

#if defined(__GNUC__) || defined(__clang__)
#define TSSS_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#else
#define TSSS_PREDICT_TRUE(x) (x)
#endif

// Debug checking is on in debug builds, or when forced (sanitizer presets).
#if !defined(NDEBUG) || defined(TSSS_FORCE_DCHECKS)
#define TSSS_DCHECK_IS_ON 1
#else
#define TSSS_DCHECK_IS_ON 0
#endif

namespace tsss::internal {

/// Prints "CHECK failed at <file>:<line>: <expr> <detail>" to stderr and
/// aborts. Out-of-line so the macros stay small at every call site.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* detail = nullptr);

/// CheckFailed specialization for TSSS_CHECK_OK: includes status.ToString().
[[noreturn]] void CheckOkFailed(const char* file, int line, const char* expr,
                                const Status& status);

}  // namespace tsss::internal

#define TSSS_CHECK(cond)                                            \
  do {                                                              \
    if (!TSSS_PREDICT_TRUE(cond)) {                                 \
      ::tsss::internal::CheckFailed(__FILE__, __LINE__, #cond);     \
    }                                                               \
  } while (false)

#define TSSS_CHECK_MSG(cond, detail)                                       \
  do {                                                                     \
    if (!TSSS_PREDICT_TRUE(cond)) {                                        \
      ::tsss::internal::CheckFailed(__FILE__, __LINE__, #cond, (detail));  \
    }                                                                      \
  } while (false)

#define TSSS_CHECK_OK(expr)                                                  \
  do {                                                                       \
    const ::tsss::Status tsss_check_ok_status = (expr);                      \
    if (!TSSS_PREDICT_TRUE(tsss_check_ok_status.ok())) {                     \
      ::tsss::internal::CheckOkFailed(__FILE__, __LINE__, #expr,             \
                                      tsss_check_ok_status);                 \
    }                                                                        \
  } while (false)

#if TSSS_DCHECK_IS_ON

#define TSSS_DCHECK(cond) TSSS_CHECK(cond)
#define TSSS_DCHECK_MSG(cond, detail) TSSS_CHECK_MSG(cond, (detail))
#define TSSS_DCHECK_FINITE(x) \
  TSSS_CHECK_MSG(std::isfinite(x), "value is not finite: " #x)

#else  // !TSSS_DCHECK_IS_ON

// Compiled out: the condition is not evaluated, but it stays visible to the
// compiler (sizeof) so variables used only in checks don't warn as unused.
#define TSSS_DCHECK(cond) \
  do {                    \
    (void)sizeof((cond)); \
  } while (false)
#define TSSS_DCHECK_MSG(cond, detail) \
  do {                                \
    (void)sizeof((cond));             \
    (void)sizeof((detail));           \
  } while (false)
#define TSSS_DCHECK_FINITE(x) \
  do {                        \
    (void)sizeof((x));        \
  } while (false)

#endif  // TSSS_DCHECK_IS_ON

#endif  // TSSS_COMMON_CHECK_H_
