#ifndef TSSS_COMMON_CRC32_H_
#define TSSS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tsss {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to checksum pages in the
/// file-backed page store so that on-disk corruption surfaces as a
/// Corruption status instead of silently wrong query answers.
std::uint32_t Crc32(const void* data, std::size_t size);

/// Incremental form: feed `crc` from a previous call (start with 0).
std::uint32_t Crc32Continue(std::uint32_t crc, const void* data, std::size_t size);

}  // namespace tsss

#endif  // TSSS_COMMON_CRC32_H_
