#ifndef TSSS_COMMON_RNG_H_
#define TSSS_COMMON_RNG_H_

#include <cstdint>

namespace tsss {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256++ seeded through SplitMix64).
///
/// Used everywhere in the library instead of std::mt19937 so that data
/// generation, tests, and benchmarks are reproducible across standard-library
/// implementations.
class Rng {
 public:
  /// Seeds the generator. Any 64-bit value is a valid seed.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64 random bits.
  std::uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi). Requires lo <= hi; returns lo when lo == hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box-Muller, cached pair).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace tsss

#endif  // TSSS_COMMON_RNG_H_
