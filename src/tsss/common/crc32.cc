#include "tsss/common/crc32.h"

#include <array>

namespace tsss {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

std::uint32_t Crc32Continue(std::uint32_t crc, const void* data,
                            std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  return Crc32Continue(0, data, size);
}

}  // namespace tsss
