#include "tsss/common/exec_control.h"

namespace tsss {

namespace {
thread_local ExecControl* g_current_exec_control = nullptr;
}  // namespace

ExecControl* CurrentExecControl() { return g_current_exec_control; }

ScopedExecControl::ScopedExecControl(ExecControl* control)
    : prev_(g_current_exec_control) {
  g_current_exec_control = control;
}

ScopedExecControl::~ScopedExecControl() { g_current_exec_control = prev_; }

}  // namespace tsss
