#include "tsss/common/rng.h"

#include <cmath>

namespace tsss {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / span) * span;
  std::uint64_t r = NextU64();
  while (r >= limit) r = NextU64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace tsss
