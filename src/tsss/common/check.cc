#include "tsss/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace tsss::internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* detail) {
  if (detail != nullptr) {
    std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", file, line, expr,
                 detail);
  } else {
    std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  }
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void CheckOkFailed(const char* file, int line, const char* expr,
                                const Status& status) {
  std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s -> %s\n", file, line,
               expr, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tsss::internal
