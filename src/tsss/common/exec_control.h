#ifndef TSSS_COMMON_EXEC_CONTROL_H_
#define TSSS_COMMON_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "tsss/common/status.h"

namespace tsss {

/// Cooperative cancellation / deadline token for one in-flight query.
///
/// A caller that wants to bound a query installs an ExecControl on the
/// executing thread with ScopedExecControl; long-running library loops poll
/// Check() at natural pause points (the R-tree checks once per node load)
/// and unwind with DeadlineExceeded/Cancelled when the token has tripped.
/// The token is shared between the executing thread (polling) and any thread
/// that calls RequestCancel(), hence the atomic flag; the deadline is set
/// before installation and immutable afterwards.
class ExecControl {
 public:
  ExecControl() = default;
  ExecControl(const ExecControl&) = delete;
  ExecControl& operator=(const ExecControl&) = delete;

  /// Sets an absolute deadline. Call before installing the control.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Flags the query for cancellation. Safe from any thread.
  void RequestCancel() {
    // relaxed-ok: standalone flag; polled by Check(), no data published
    cancelled_.store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    // relaxed-ok: advisory poll of a standalone flag, no acquire payload
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Trips Check() after `n` more polls, regardless of the wall clock.
  /// Test hook: lets a regression test aim a deadline at the Nth poll site
  /// on a query path deterministically. 0 disables (the default).
  void set_check_budget(std::uint64_t n) {
    check_budget_ = n;
    has_budget_ = n != 0;
  }

  /// Number of Check() calls observed so far (poll-coverage telemetry).
  std::uint64_t checks() const {
    // relaxed-ok: monotonic counter read for telemetry, no ordering needed
    return checks_.load(std::memory_order_relaxed);
  }

  /// OK while the query may keep running; Cancelled / DeadlineExceeded once
  /// it must unwind. Reads the clock only when a deadline is set.
  Status Check() const {
    // relaxed-ok: poll counter is advisory; only the polling thread writes
    const std::uint64_t seen = 1 + checks_.fetch_add(1, std::memory_order_relaxed);
    if (cancel_requested()) {
      return Status::Cancelled("query cancelled");
    }
    if (has_budget_ && seen > check_budget_) {
      return Status::DeadlineExceeded("query check budget exhausted");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::uint64_t> checks_{0};
  bool has_deadline_ = false;
  bool has_budget_ = false;
  std::uint64_t check_budget_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
};

/// The control governing the current thread's in-flight query, or nullptr.
ExecControl* CurrentExecControl();

/// Polls the current thread's ExecControl, if any. The canonical one-liner
/// for query loops that do page I/O without going through RTree::LoadNode
/// (which polls per node on its own): tsss_lint's deadline-poll check
/// requires every such loop to reach this, LoadNode, or a waiver.
inline Status PollExecControl() {
  ExecControl* control = CurrentExecControl();
  if (control == nullptr) return Status::OK();
  return control->Check();
}

/// Installs `control` as the current thread's ExecControl for its lifetime,
/// restoring the previous one on destruction (scopes nest).
class ScopedExecControl {
 public:
  explicit ScopedExecControl(ExecControl* control);
  ~ScopedExecControl();

  ScopedExecControl(const ScopedExecControl&) = delete;
  ScopedExecControl& operator=(const ScopedExecControl&) = delete;

 private:
  ExecControl* prev_;
};

}  // namespace tsss

#endif  // TSSS_COMMON_EXEC_CONTROL_H_
