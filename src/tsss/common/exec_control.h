#ifndef TSSS_COMMON_EXEC_CONTROL_H_
#define TSSS_COMMON_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>

#include "tsss/common/status.h"

namespace tsss {

/// Cooperative cancellation / deadline token for one in-flight query.
///
/// A caller that wants to bound a query installs an ExecControl on the
/// executing thread with ScopedExecControl; long-running library loops poll
/// Check() at natural pause points (the R-tree checks once per node load)
/// and unwind with DeadlineExceeded/Cancelled when the token has tripped.
/// The token is shared between the executing thread (polling) and any thread
/// that calls RequestCancel(), hence the atomic flag; the deadline is set
/// before installation and immutable afterwards.
class ExecControl {
 public:
  ExecControl() = default;
  ExecControl(const ExecControl&) = delete;
  ExecControl& operator=(const ExecControl&) = delete;

  /// Sets an absolute deadline. Call before installing the control.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Flags the query for cancellation. Safe from any thread.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// OK while the query may keep running; Cancelled / DeadlineExceeded once
  /// it must unwind. Reads the clock only when a deadline is set.
  Status Check() const {
    if (cancel_requested()) {
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// The control governing the current thread's in-flight query, or nullptr.
ExecControl* CurrentExecControl();

/// Installs `control` as the current thread's ExecControl for its lifetime,
/// restoring the previous one on destruction (scopes nest).
class ScopedExecControl {
 public:
  explicit ScopedExecControl(ExecControl* control);
  ~ScopedExecControl();

  ScopedExecControl(const ScopedExecControl&) = delete;
  ScopedExecControl& operator=(const ScopedExecControl&) = delete;

 private:
  ExecControl* prev_;
};

}  // namespace tsss

#endif  // TSSS_COMMON_EXEC_CONTROL_H_
