#ifndef TSSS_COMMON_MATH_UTILS_H_
#define TSSS_COMMON_MATH_UTILS_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace tsss {

/// Absolute + relative tolerance comparison for doubles.
/// Returns true when |a-b| <= abs_tol + rel_tol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-9, double rel_tol = 1e-9);

/// Arithmetic mean of `values`. Returns 0 for an empty span.
double Mean(std::span<const double> values);

/// Population variance of `values`. Returns 0 for spans of length < 2.
double Variance(std::span<const double> values);

/// Population standard deviation.
double StdDev(std::span<const double> values);

/// Numerically robust sum (Kahan compensated summation).
double KahanSum(std::span<const double> values);

/// Percentile in [0,100] by linear interpolation on a *sorted* span.
/// Returns 0 for an empty span.
double PercentileOfSorted(std::span<const double> sorted, double pct);

/// True iff v is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v must be >= 1).
std::size_t NextPowerOfTwo(std::size_t v);

/// Clamps x to [lo, hi].
constexpr double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace tsss

#endif  // TSSS_COMMON_MATH_UTILS_H_
