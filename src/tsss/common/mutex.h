#ifndef TSSS_COMMON_MUTEX_H_
#define TSSS_COMMON_MUTEX_H_

// Annotated synchronization primitives (see common/thread_annotations.h).
//
// std::mutex carries no thread-safety attributes, so Clang's analysis cannot
// see a std::lock_guard acquire anything. These thin wrappers (the LevelDB
// port::Mutex pattern) re-export std::mutex / std::condition_variable with
// capability annotations; all lock-holding state in storage/ and service/
// goes through them so that TSSS_GUARDED_BY members are actually checked.
//
// The wrappers add no state and no overhead beyond the underlying
// primitives; Lock/Unlock inline to std::mutex::lock/unlock.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "tsss/common/thread_annotations.h"

namespace tsss {

class CondVar;

/// An annotated std::mutex. Prefer MutexLock over manual Lock/Unlock pairs.
class TSSS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TSSS_ACQUIRE() { mu_.lock(); }
  void Unlock() TSSS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TSSS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// For checked documentation of "must hold" in code the analysis cannot
  /// follow (e.g. across a condition-variable wait).
  void AssertHeld() TSSS_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  // lint-ok: raw-mutex (this class IS the annotated wrapper around it)
  std::mutex mu_;
};

/// RAII lock for the scope of a block (std::lock_guard over tsss::Mutex).
class TSSS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TSSS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TSSS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to a tsss::Mutex (LevelDB port::CondVar shape).
/// Every Wait variant must be called with the bound mutex held and re-holds
/// it on return. The requirement is deliberately NOT expressed as
/// TSSS_REQUIRES(mu_): the analysis compares capability expressions
/// syntactically and cannot prove that `cv_.mu_` aliases the caller's `mu_`,
/// so the annotation would reject every correct call site. From the
/// checker's point of view the caller's MutexLock scope simply stays active
/// across the wait - which matches reality, since wait() re-acquires before
/// returning. Spurious-wakeup loops therefore live in the caller, where the
/// guarded state is visible to the analysis.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold the bound mutex.
  void Wait() {
    // lint-ok: raw-mutex (adopting the wrapper's underlying handle for cv wait)
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Caller must hold the bound mutex. Returns false on timeout.
  template <typename Clock, typename Duration>
  [[nodiscard]] bool WaitUntil(
      const std::chrono::time_point<Clock, Duration>& deadline) {
    // lint-ok: raw-mutex (adopting the wrapper's underlying handle for cv wait)
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  Mutex* mu_;
  std::condition_variable cv_;
};

}  // namespace tsss

#endif  // TSSS_COMMON_MUTEX_H_
