#include <utility>
#include <vector>

#include "tsss/index/rtree.h"
#include "tsss/obs/query_telemetry.h"

namespace tsss::index {

RTree::LineNeighborIterator::LineNeighborIterator(const RTree* tree,
                                                  geom::Line line)
    : tree_(tree), line_(std::move(line)) {
  QueueItem root_item;
  root_item.distance = 0.0;
  root_item.is_record = false;
  root_item.page = tree_->root_;
  heap_.push(root_item);
}

Result<std::optional<LineMatch>> RTree::LineNeighborIterator::Next() {
  while (!heap_.empty()) {
    QueueItem item = heap_.top();
    heap_.pop();
    if (item.is_record) {
      obs::TickLeafCandidates();
      return std::optional<LineMatch>(item.match);
    }
    Result<Node> node = tree_->LoadNode(item.page);
    if (!node.ok()) return node.status();
    obs::TickNodeVisit(node->level);
    for (const Entry& e : node->entries) {
      QueueItem child;
      if (node->is_leaf()) {
        child.is_record = true;
        if (tree_->config().box_leaves) {
          obs::TickMbrDistanceEvals();
          child.distance = geom::LineMbrDistance(line_, e.mbr);
        } else {
          child.distance = geom::Pld(e.mbr.lo(), line_);
        }
        child.match = LineMatch{e.record, child.distance};
      } else {
        child.is_record = false;
        child.page = e.child;
        obs::TickMbrDistanceEvals();
        child.distance = geom::LineMbrDistance(line_, e.mbr);
      }
      heap_.push(child);
    }
  }
  return std::optional<LineMatch>();
}

RTree::LineNeighborIterator RTree::NearestLineNeighbors(
    const geom::Line& line) const {
  return LineNeighborIterator(this, line);
}

Result<std::vector<LineMatch>> RTree::PointKnn(std::span<const double> point,
                                               std::size_t k) const {
  if (point.size() != config_.dim) {
    return Status::InvalidArgument("query point dim mismatch");
  }
  // A point query is a degenerate line query: the zero-direction "line"
  // reduces every line-distance primitive to the point distance.
  const geom::Line degenerate{geom::Vec(point.begin(), point.end()),
                              geom::Vec(point.size(), 0.0)};
  return LineKnn(degenerate, k);
}

Result<std::vector<LineMatch>> RTree::LineKnn(const geom::Line& line,
                                              std::size_t k) const {
  if (line.dim() != config_.dim) {
    return Status::InvalidArgument("query line dim mismatch");
  }
  std::vector<LineMatch> out;
  LineNeighborIterator it = NearestLineNeighbors(line);
  while (out.size() < k) {
    Result<std::optional<LineMatch>> next = it.Next();
    if (!next.ok()) return next.status();
    if (!next->has_value()) break;
    out.push_back(**next);
  }
  return out;
}

}  // namespace tsss::index
