#ifndef TSSS_INDEX_RTREE_H_
#define TSSS_INDEX_RTREE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/geom/line.h"
#include "tsss/geom/mbr.h"
#include "tsss/geom/penetration.h"
#include "tsss/index/node.h"
#include "tsss/index/split.h"
#include "tsss/storage/buffer_pool.h"

namespace tsss::index {

/// Construction parameters of an RTree. Defaults reproduce the paper's
/// experimental setting (Section 7): 4 KiB pages, one node per page, M = 20,
/// m = 40% of M = 8, R* forced-reinsert p = 30% of M = 6.
struct RTreeConfig {
  std::size_t dim = 6;            ///< dimensionality of indexed points
  std::size_t max_entries = 20;   ///< M for internal nodes (capped by page)
  /// Leaf entries carry full boxes instead of points (sub-trail MBR mode,
  /// following the ST-index [2]). Line queries then report every record
  /// whose box passes the eps-penetration test.
  bool box_leaves = false;
  /// Max entries per leaf. 0 (default) = as many as fit the page, matching
  /// the paper's setup where M = 20 governs *internal* nodes while leaf
  /// pages pack point entries densely.
  std::size_t leaf_max_entries = 0;
  double min_fill_fraction = 0.4; ///< m = max(1, floor(fraction * capacity))
  SplitAlgorithm split = SplitAlgorithm::kRStar;
  /// Fraction of the node capacity removed on forced reinsertion
  /// (R* only; 0 disables).
  double reinsert_fraction = 0.3;

  /// X-tree extension (Berchtold et al., cited by the paper for the
  /// high-dimensional overlap problem): when splitting an overflowing
  /// *internal* node would produce groups whose MBRs overlap more than
  /// `supernode_overlap_fraction` of their union volume, keep the node as a
  /// multi-page supernode instead. A supernode's pages are chained and every
  /// chained page counts as one access, so the accounting stays honest.
  bool enable_supernodes = false;
  double supernode_overlap_fraction = 0.2;
  /// Hard ceiling: a supernode may hold at most this multiple of M entries.
  std::size_t max_supernode_multiple = 16;

  std::size_t min_entries() const { return MinFillOf(max_entries); }
  std::size_t reinsert_count() const { return ReinsertOf(max_entries); }

  std::size_t MinFillOf(std::size_t capacity) const {
    const auto m = static_cast<std::size_t>(min_fill_fraction *
                                            static_cast<double>(capacity));
    return m < 1 ? 1 : m;
  }
  std::size_t ReinsertOf(std::size_t capacity) const {
    return static_cast<std::size_t>(reinsert_fraction *
                                    static_cast<double>(capacity));
  }
};

/// A match produced by a line query: the record plus its point's distance to
/// the query line in the *indexed* (reduced) space.
struct LineMatch {
  RecordId record = 0;
  double reduced_distance = 0.0;
};

/// Statistics describing tree shape; see ComputeStats().
struct TreeStats {
  std::size_t height = 0;          ///< number of levels (1 = root is a leaf)
  std::size_t node_count = 0;      ///< logical nodes
  std::size_t node_pages = 0;      ///< physical pages (supernode chains count all)
  std::size_t supernode_count = 0; ///< internal nodes spanning > 1 page
  std::size_t leaf_count = 0;
  std::size_t entry_count = 0;     ///< data entries (leaf records)
  double avg_leaf_fill = 0.0;      ///< mean leaf occupancy / M
  double avg_internal_fill = 0.0;
  double total_leaf_mbr_volume = 0.0;
  double total_overlap_volume = 0.0;  ///< pairwise sibling-MBR overlap
  double avg_aspect_ratio = 0.0;      ///< mean (longest side / shortest side)
  double avg_diag_to_min_side = 0.0;  ///< mean (diagonal / shortest side)
};

/// Shape of one tree level, for ComputeStructuralStats(). Level 0 = leaves.
struct LevelStats {
  std::size_t level = 0;
  std::size_t nodes = 0;
  std::size_t entries = 0;      ///< total entries across the level's nodes
  std::size_t min_fanout = 0;
  std::size_t max_fanout = 0;
  double avg_fanout = 0.0;
  /// Mean entries / capacity; capacity is leaf_capacity() for level 0 and
  /// config().max_entries otherwise (supernodes can push a node above 1.0).
  double avg_occupancy = 0.0;
  /// Node count by occupancy decile; [9] also holds occupancy >= 100%.
  std::size_t occupancy_histogram[10] = {};
  /// Pairwise overlap volume among sibling MBRs, summed over the level's
  /// nodes (the X-tree degradation signal, per node of the level *above*
  /// this one's entries live in - i.e. computed from nodes AT this level
  /// over their own entry boxes).
  double overlap_volume = 0.0;
  /// Mean of max(0, V(node) - sum V(entries)) / V(node) over nodes with
  /// V(node) > 0: how much of each node's box covers no child box. Point
  /// leaves have degenerate entry boxes, so their ratio is 1 by definition.
  double dead_space_ratio = 0.0;
  double margin_sum = 0.0;  ///< sum of node-MBR margins (R* split objective)
};

/// Full structural profile of the tree: TreeStats' totals plus per-level
/// fanout/occupancy histograms, overlap, dead space and margins, and a
/// leaf-depth uniformity check. See ComputeStructuralStats().
struct StructuralStats {
  std::size_t height = 0;
  std::size_t node_count = 0;
  std::size_t entry_count = 0;      ///< data entries (leaf records)
  std::size_t supernode_count = 0;
  /// True iff the observed levels are exactly {0, ..., height-1}, the top
  /// level has one node (the root) and each internal level's entry count
  /// equals the node count of the level below - i.e. the tree is height-
  /// balanced with no dangling references.
  bool depth_uniform = false;
  std::vector<LevelStats> levels;  ///< [0] = leaves, [height-1] = root
};

/// Disk-resident R-tree over `dim`-dimensional points with the paper's
/// line-penetration search.
///
/// The tree is a height-balanced hierarchy of 4 KiB nodes managed by a
/// BufferPool; every node access goes through the pool and is counted, which
/// is how the Figure 5 experiment measures page accesses. Supports Guttman
/// (linear/quadratic split) and R* (ChooseSubtree, topological split, forced
/// reinsertion) insertion flavours, deletion with tree condensation, bulk
/// loading (STR), rectangle queries, the paper's line queries, and
/// incremental nearest-line-neighbour iteration.
///
/// Thread-compatibility (DESIGN.md §8): the read path - RangeQuery,
/// LineQuery, LineKnn, PointKnn and NearestLineNeighbors - is const and safe
/// to run from many threads concurrently over one tree, provided no mutation
/// (Insert/Delete/BulkLoad) runs at the same time; the underlying BufferPool
/// is internally synchronized. Mutations keep the single-writer contract.
/// Query methods poll the calling thread's ExecControl (if one is installed)
/// once per node load, so deadlines and cancellation take effect at R-tree
/// node granularity.
class RTree {
 public:
  /// Creates an empty tree whose nodes live in `pool` (must outlive the
  /// tree). Validates the configuration against the page capacity.
  static Result<std::unique_ptr<RTree>> Create(storage::BufferPool* pool,
                                               const RTreeConfig& config);

  /// Re-attaches to a tree whose pages already live in `pool`'s store
  /// (persistence re-open). `root`, `height` and `size` come from the saved
  /// metadata; the root node is loaded to validate them.
  static Result<std::unique_ptr<RTree>> Attach(storage::BufferPool* pool,
                                               const RTreeConfig& config,
                                               storage::PageId root,
                                               std::size_t height,
                                               std::size_t size);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Inserts a point with the given record id. Duplicates are allowed.
  Status Insert(std::span<const double> point, RecordId record);

  /// Inserts a box entry (requires config.box_leaves).
  Status InsertBox(const geom::Mbr& box, RecordId record);

  /// Removes one entry matching (point, record).
  /// Returns NotFound if no such entry exists.
  Status Delete(std::span<const double> point, RecordId record);

  /// Removes one box entry matching (box, record).
  Status DeleteBox(const geom::Mbr& box, RecordId record);

  /// Bulk loads (replaces) the tree contents with Sort-Tile-Recursive
  /// packing. Much faster than repeated Insert and produces a well-shaped
  /// tree; records currently in the tree are discarded.
  Status BulkLoad(std::vector<Entry> points);

  /// All records whose point intersects `box`.
  Result<std::vector<RecordId>> RangeQuery(const geom::Mbr& box) const;

  /// The paper's search (Section 6): all records whose indexed point lies
  /// within `eps` of `line`, visiting only subtrees admitted by `strategy`
  /// (Theorem 3 guarantees no false dismissal). `stats` may be null.
  Result<std::vector<LineMatch>> LineQuery(const geom::Line& line, double eps,
                                           geom::PruneStrategy strategy,
                                           geom::PenetrationStats* stats) const;

  /// The k records whose points are nearest to `line` in reduced distance,
  /// in increasing order (branch-and-bound best-first search).
  Result<std::vector<LineMatch>> LineKnn(const geom::Line& line,
                                         std::size_t k) const;

  /// Classic k-nearest-neighbour search around a point (best-first search
  /// with MinDist pruning). Distances are Euclidean in the indexed space;
  /// for box leaves the distance is point-to-box.
  Result<std::vector<LineMatch>> PointKnn(std::span<const double> point,
                                          std::size_t k) const;

  /// Incremental nearest-line-neighbour iterator: yields records in
  /// non-decreasing reduced distance to the query line. Used by the engine's
  /// exact k-NN (GEMINI-style multi-step search).
  class LineNeighborIterator {
   public:
    /// Returns the next nearest match, or nullopt when exhausted.
    Result<std::optional<LineMatch>> Next();

   private:
    friend class RTree;
    struct QueueItem {
      double distance;
      bool is_record;
      storage::PageId page;
      LineMatch match;
      bool operator>(const QueueItem& other) const {
        return distance > other.distance;
      }
    };
    LineNeighborIterator(const RTree* tree, geom::Line line);

    const RTree* tree_;
    geom::Line line_;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> heap_;
  };
  LineNeighborIterator NearestLineNeighbors(const geom::Line& line) const;

  /// Number of data entries in the tree.
  std::size_t size() const { return size_; }
  /// Levels in the tree; 1 when the root is a leaf.
  std::size_t height() const { return height_; }
  /// Resolved max entries for leaf nodes (config value or page capacity).
  std::size_t leaf_capacity() const { return leaf_max_; }
  /// First page of the root node (persisted by the engine's checkpoint).
  storage::PageId root_page() const { return root_; }
  const RTreeConfig& config() const { return config_; }
  storage::BufferPool* pool() { return pool_; }

  /// Walks the whole tree and validates structural invariants:
  ///  * parent MBRs tightly contain (equal) the union of their children,
  ///  * fanout within [m, M] for non-roots, internal root has >= 2 entries,
  ///  * uniform leaf depth (every root-to-leaf path has length `height`),
  ///  * total leaf entry count matches size(),
  ///  * every box has matching dimensionality, finite coordinates and
  ///    lo <= hi; point-mode leaves hold degenerate boxes,
  ///  * internal entries reference valid child pages.
  /// O(n) full-tree walk - used by tests after every mutation and by the
  /// engine's consistency checks, not on query hot paths.
  Status ValidateInvariants();

  /// Back-compat alias for ValidateInvariants().
  Status CheckInvariants() { return ValidateInvariants(); }

  /// Walks the whole tree and gathers shape statistics.
  Result<TreeStats> ComputeStats() const;

  /// Walks the whole tree and gathers the full structural profile (per-level
  /// histograms, overlap, dead space, depth check). Const and read-only like
  /// ComputeStats(); an O(n + sum fanout^2) walk for diagnostics, not for
  /// query hot paths.
  Result<StructuralStats> ComputeStructuralStats() const;

  /// Calls `fn(node, page_id)` for every node, top-down. Exposed for the
  /// stats/ablation tooling. Read-only (queries may run concurrently).
  Status VisitNodes(
      const std::function<void(const Node&, storage::PageId)>& fn) const;

 private:
  RTree(storage::BufferPool* pool, const RTreeConfig& config);

  struct PathStep {
    storage::PageId page = storage::kInvalidPageId;
    /// Index of this node's entry within its parent (undefined for root).
    std::size_t index_in_parent = 0;
  };

  /// Loads a node, following supernode chain pages (each counted). Const and
  /// concurrency-safe: reads only immutable tree state plus the internally
  /// synchronized pool. Polls the thread's ExecControl (deadline/cancel).
  Result<Node> LoadNode(storage::PageId id) const;
  /// Stores a node, growing or shrinking its chain as needed.
  Status StoreNode(storage::PageId id, const Node& node);
  /// Writes `node` into the given chain, allocating/freeing pages to fit.
  Status WriteChain(const Node& node, std::vector<storage::PageId> chain);
  /// Allocates pages for a brand-new node (chained if necessary) and writes
  /// it; returns the first page id.
  Result<storage::PageId> StoreNewNode(const Node& node);
  /// Collects the chain page ids starting at `id` (first included).
  Result<std::vector<storage::PageId>> ChainPages(storage::PageId id);
  /// Frees a node including any chained continuation pages.
  Status FreeNodeChain(storage::PageId id);

  /// Capacity / fill bounds for a node of the given kind.
  std::size_t MaxFor(const Node& node) const {
    return node.is_leaf() ? leaf_max_ : config_.max_entries;
  }
  std::size_t MinFor(const Node& node) const {
    return config_.MinFillOf(MaxFor(node));
  }

  /// Descends from the root to the best node at `target_level` for `mbr`
  /// (R* ChooseSubtree or Guttman ChooseLeaf depending on config).
  Result<std::vector<PathStep>> ChoosePath(const geom::Mbr& mbr,
                                           std::uint16_t target_level);

  /// Core insertion of an entry at a level; drives overflow treatment.
  Status InsertEntry(Entry entry, std::uint16_t target_level,
                     std::vector<bool>& reinserted_at_level);

  /// Handles MBR updates and overflows along `path` bottom-up.
  Status PropagateUp(std::vector<PathStep> path,
                     std::vector<bool>& reinserted_at_level);

  /// Removes the `count` entries farthest from the node's MBR center and
  /// returns them (R* forced reinsertion).
  std::vector<Entry> TakeFarthestEntries(Node* node, std::size_t count);

  /// Grows the tree by one level: old root and `sibling` become children of
  /// a fresh root.
  Status GrowRoot(Entry old_root_entry, Entry sibling_entry);

  /// Depth-first search for the leaf containing (point, record).
  Result<std::optional<std::vector<PathStep>>> FindLeaf(
      storage::PageId page, std::uint16_t level, const geom::Mbr& target,
      RecordId record, std::vector<PathStep>& path);

  /// Removes under-full nodes along the path after a deletion, collecting
  /// orphaned entries for reinsertion.
  Status CondenseTree(std::vector<PathStep> path);

  Status CheckNode(storage::PageId page, std::uint16_t expected_level,
                   const geom::Mbr* parent_box, bool is_root,
                   std::size_t* entries_seen);

  storage::BufferPool* pool_;
  RTreeConfig config_;
  NodeCodec codec_;
  storage::PageId root_ = storage::kInvalidPageId;
  std::size_t leaf_max_ = 0;
  std::size_t size_ = 0;
  std::size_t height_ = 1;
};

/// Publishes the headline numbers of `stats` as tsss_tree_* gauges in the
/// global MetricsRegistry (height, nodes, entries, supernodes, occupancy and
/// dead-space permille). Idempotent: gauges are set, not accumulated.
void RegisterStructuralGauges(const StructuralStats& stats);

}  // namespace tsss::index

#endif  // TSSS_INDEX_RTREE_H_
