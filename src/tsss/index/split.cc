#include "tsss/index/split.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "tsss/common/check.h"

namespace tsss::index {
namespace {

using geom::Mbr;

Mbr MbrOfRange(const std::vector<Entry>& entries,
               const std::vector<std::size_t>& order, std::size_t begin,
               std::size_t end, std::size_t dim) {
  Mbr out(dim);
  for (std::size_t i = begin; i < end; ++i) out.Extend(entries[order[i]].mbr);
  return out;
}

/// Decides which group should absorb `mbr` during Guttman-style entry
/// assignment. Primary criterion is volume enlargement; ties fall back to
/// margin enlargement (which stays informative when boxes are degenerate,
/// e.g. collinear points give every box zero volume), then current volume,
/// margin and group size.
bool PreferGroupA(const Mbr& box_a, const Mbr& box_b, const Mbr& mbr,
                  std::size_t size_a, std::size_t size_b) {
  Mbr grown_a = box_a;
  grown_a.Extend(mbr);
  Mbr grown_b = box_b;
  grown_b.Extend(mbr);
  const double vol_grow_a = grown_a.Volume() - box_a.Volume();
  const double vol_grow_b = grown_b.Volume() - box_b.Volume();
  if (vol_grow_a != vol_grow_b) return vol_grow_a < vol_grow_b;
  const double margin_grow_a = grown_a.Margin() - box_a.Margin();
  const double margin_grow_b = grown_b.Margin() - box_b.Margin();
  if (margin_grow_a != margin_grow_b) return margin_grow_a < margin_grow_b;
  if (box_a.Volume() != box_b.Volume()) return box_a.Volume() < box_b.Volume();
  if (box_a.Margin() != box_b.Margin()) return box_a.Margin() < box_b.Margin();
  return size_a <= size_b;
}

/// Guttman linear split: seeds with greatest normalised separation, then
/// assign remaining entries to the group needing least enlargement.
SplitResult LinearSplit(std::vector<Entry> entries, std::size_t dim,
                        std::size_t min_fill) {
  const std::size_t n = entries.size();
  // Pick seeds.
  std::size_t seed_a = 0;
  std::size_t seed_b = 1;
  double best_sep = -std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < dim; ++d) {
    double min_lo = std::numeric_limits<double>::infinity();
    double max_hi = -std::numeric_limits<double>::infinity();
    std::size_t high_lo_idx = 0;  // entry with greatest lo
    std::size_t low_hi_idx = 0;   // entry with smallest hi
    double high_lo = -std::numeric_limits<double>::infinity();
    double low_hi = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const double lo = entries[i].mbr.lo()[d];
      const double hi = entries[i].mbr.hi()[d];
      min_lo = std::min(min_lo, lo);
      max_hi = std::max(max_hi, hi);
      if (lo > high_lo) {
        high_lo = lo;
        high_lo_idx = i;
      }
      if (hi < low_hi) {
        low_hi = hi;
        low_hi_idx = i;
      }
    }
    const double width = max_hi - min_lo;
    if (high_lo_idx == low_hi_idx) continue;
    const double sep = width > 0.0 ? (high_lo - low_hi) / width : 0.0;
    if (sep > best_sep) {
      best_sep = sep;
      seed_a = low_hi_idx;
      seed_b = high_lo_idx;
    }
  }
  if (seed_a == seed_b) seed_b = (seed_a + 1) % n;

  SplitResult out;
  Mbr box_a = entries[seed_a].mbr;
  Mbr box_b = entries[seed_b].mbr;
  out.left.push_back(std::move(entries[seed_a]));
  out.right.push_back(std::move(entries[seed_b]));

  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(i);
  }
  std::size_t remaining = rest.size();
  for (std::size_t idx : rest) {
    Entry& e = entries[idx];
    // Min-fill guarantee: if one side must take everything left, do so.
    if (out.left.size() + remaining == min_fill) {
      box_a.Extend(e.mbr);
      out.left.push_back(std::move(e));
      --remaining;
      continue;
    }
    if (out.right.size() + remaining == min_fill) {
      box_b.Extend(e.mbr);
      out.right.push_back(std::move(e));
      --remaining;
      continue;
    }
    const bool to_a =
        PreferGroupA(box_a, box_b, e.mbr, out.left.size(), out.right.size());
    if (to_a) {
      box_a.Extend(e.mbr);
      out.left.push_back(std::move(e));
    } else {
      box_b.Extend(e.mbr);
      out.right.push_back(std::move(e));
    }
    --remaining;
  }
  return out;
}

/// Guttman quadratic split: seeds maximise dead space; PickNext maximises the
/// enlargement difference.
SplitResult QuadraticSplit(std::vector<Entry> entries, std::size_t dim,
                           std::size_t min_fill) {
  (void)dim;  // kept for signature symmetry with the other algorithms
  const std::size_t n = entries.size();
  std::size_t seed_a = 0;
  std::size_t seed_b = 1;
  double worst_vol_waste = -std::numeric_limits<double>::infinity();
  double worst_margin_waste = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      Mbr merged = entries[i].mbr;
      merged.Extend(entries[j].mbr);
      const double vol_waste =
          merged.Volume() - entries[i].mbr.Volume() - entries[j].mbr.Volume();
      // Margin waste breaks ties when every pair union is degenerate
      // (zero volume), e.g. collinear point entries.
      const double margin_waste =
          merged.Margin() - entries[i].mbr.Margin() - entries[j].mbr.Margin();
      if (vol_waste > worst_vol_waste ||
          (vol_waste == worst_vol_waste && margin_waste > worst_margin_waste)) {
        worst_vol_waste = vol_waste;
        worst_margin_waste = margin_waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  SplitResult out;
  Mbr box_a = entries[seed_a].mbr;
  Mbr box_b = entries[seed_b].mbr;
  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;
  out.left.push_back(entries[seed_a]);
  out.right.push_back(entries[seed_b]);
  std::size_t remaining = n - 2;

  while (remaining > 0) {
    // Min-fill short-circuit.
    if (out.left.size() + remaining == min_fill ||
        out.right.size() + remaining == min_fill) {
      const bool to_a = out.left.size() + remaining == min_fill;
      for (std::size_t i = 0; i < n; ++i) {
        if (assigned[i]) continue;
        assigned[i] = true;
        if (to_a) {
          box_a.Extend(entries[i].mbr);
          out.left.push_back(entries[i]);
        } else {
          box_b.Extend(entries[i].mbr);
          out.right.push_back(entries[i]);
        }
      }
      remaining = 0;
      break;
    }
    // PickNext: unassigned entry with max |grow_a - grow_b|.
    std::size_t pick = n;
    double best_diff = -1.0;
    double pick_grow_a = 0.0;
    double pick_grow_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double grow_a = box_a.EnlargedVolume(entries[i].mbr) - box_a.Volume();
      const double grow_b = box_b.EnlargedVolume(entries[i].mbr) - box_b.Volume();
      const double diff = std::fabs(grow_a - grow_b);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_grow_a = grow_a;
        pick_grow_b = grow_b;
      }
    }
    TSSS_DCHECK(pick < n);
    assigned[pick] = true;
    (void)pick_grow_a;
    (void)pick_grow_b;
    const bool to_a = PreferGroupA(box_a, box_b, entries[pick].mbr,
                                   out.left.size(), out.right.size());
    if (to_a) {
      box_a.Extend(entries[pick].mbr);
      out.left.push_back(entries[pick]);
    } else {
      box_b.Extend(entries[pick].mbr);
      out.right.push_back(entries[pick]);
    }
    --remaining;
  }
  return out;
}

/// R* split: choose axis by minimal margin sum over all candidate
/// distributions, then the distribution with minimal overlap volume
/// (ties: minimal total volume).
SplitResult RStarSplit(std::vector<Entry> entries, std::size_t dim,
                       std::size_t min_fill) {
  const std::size_t n = entries.size();
  const std::size_t num_dists = n - 2 * min_fill + 1;  // k = 0 .. num_dists-1
  TSSS_DCHECK(num_dists >= 1);

  std::size_t best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> order(n);

  auto sorted_order = [&](std::size_t axis, bool by_hi) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ka = by_hi ? entries[a].mbr.hi()[axis] : entries[a].mbr.lo()[axis];
      const double kb = by_hi ? entries[b].mbr.hi()[axis] : entries[b].mbr.lo()[axis];
      return ka < kb;
    });
  };

  for (std::size_t axis = 0; axis < dim; ++axis) {
    for (bool by_hi : {false, true}) {
      sorted_order(axis, by_hi);
      double margin_sum = 0.0;
      for (std::size_t k = 0; k < num_dists; ++k) {
        const std::size_t split_at = min_fill + k;
        const Mbr left = MbrOfRange(entries, order, 0, split_at, dim);
        const Mbr right = MbrOfRange(entries, order, split_at, n, dim);
        margin_sum += left.Margin() + right.Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_hi = by_hi;
      }
    }
  }

  // Along the chosen axis+sort, pick the distribution with minimal overlap.
  sorted_order(best_axis, best_axis_by_hi);
  std::size_t best_split = min_fill;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  double best_margin = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < num_dists; ++k) {
    const std::size_t split_at = min_fill + k;
    const Mbr left = MbrOfRange(entries, order, 0, split_at, dim);
    const Mbr right = MbrOfRange(entries, order, split_at, n, dim);
    const double overlap = left.OverlapVolume(right);
    const double volume = left.Volume() + right.Volume();
    // Margin breaks volume ties for degenerate boxes (see PreferGroupA).
    const double margin = left.Margin() + right.Margin();
    if (overlap < best_overlap ||
        (overlap == best_overlap &&
         (volume < best_volume ||
          (volume == best_volume && margin < best_margin)))) {
      best_overlap = overlap;
      best_volume = volume;
      best_margin = margin;
      best_split = split_at;
    }
  }

  SplitResult out;
  out.left.reserve(best_split);
  out.right.reserve(n - best_split);
  for (std::size_t i = 0; i < best_split; ++i)
    out.left.push_back(std::move(entries[order[i]]));
  for (std::size_t i = best_split; i < n; ++i)
    out.right.push_back(std::move(entries[order[i]]));
  return out;
}

}  // namespace

std::string_view SplitAlgorithmToString(SplitAlgorithm algo) {
  switch (algo) {
    case SplitAlgorithm::kLinear:
      return "linear";
    case SplitAlgorithm::kQuadratic:
      return "quadratic";
    case SplitAlgorithm::kRStar:
      return "rstar";
  }
  return "unknown";
}

SplitResult SplitEntries(std::vector<Entry> entries, std::size_t dim,
                         std::size_t min_fill, SplitAlgorithm algo) {
  TSSS_DCHECK(min_fill >= 1);
  TSSS_DCHECK(entries.size() >= 2 * min_fill);
  switch (algo) {
    case SplitAlgorithm::kLinear:
      return LinearSplit(std::move(entries), dim, min_fill);
    case SplitAlgorithm::kQuadratic:
      return QuadraticSplit(std::move(entries), dim, min_fill);
    case SplitAlgorithm::kRStar:
      return RStarSplit(std::move(entries), dim, min_fill);
  }
  return LinearSplit(std::move(entries), dim, min_fill);
}

}  // namespace tsss::index
