#include "tsss/index/node.h"

#include <cmath>
#include <cstring>
#include <string>

namespace tsss::index {
namespace {

constexpr std::uint16_t kMagic = 0x5254;  // "RT"
constexpr std::uint16_t kFlagBoxLeaves = 0x1;
constexpr std::size_t kHeaderBytes =
    5 * sizeof(std::uint16_t) + sizeof(std::uint32_t);

std::size_t InternalEntryBytes(std::size_t dim) {
  return sizeof(std::uint32_t) + 2 * dim * sizeof(double);
}

std::size_t LeafEntryBytes(std::size_t dim, bool box_leaves) {
  return sizeof(std::uint64_t) + (box_leaves ? 2 : 1) * dim * sizeof(double);
}

class Writer {
 public:
  explicit Writer(storage::Page* page) : page_(page) {}

  template <typename T>
  void Put(T value) {
    std::memcpy(page_->bytes.data() + pos_, &value, sizeof(T));
    pos_ += sizeof(T);
  }

  std::size_t pos() const { return pos_; }

 private:
  storage::Page* page_;
  std::size_t pos_ = 0;
};

class Reader {
 public:
  explicit Reader(const storage::Page* page) : page_(page) {}

  template <typename T>
  T Get() {
    T value;
    std::memcpy(&value, page_->bytes.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

 private:
  const storage::Page* page_;
  std::size_t pos_ = 0;
};

}  // namespace

geom::Mbr Node::ComputeMbr(std::size_t dim) const {
  geom::Mbr out(dim);
  for (const Entry& e : entries) out.Extend(e.mbr);
  return out;
}

NodeCodec::NodeCodec(std::size_t dim, bool box_leaves)
    : dim_(dim),
      box_leaves_(box_leaves),
      max_internal_((storage::kPageSize - kHeaderBytes) / InternalEntryBytes(dim)),
      max_leaf_((storage::kPageSize - kHeaderBytes) /
                LeafEntryBytes(dim, box_leaves)) {}

Status NodeCodec::EncodePart(std::uint16_t level, std::span<const Entry> entries,
                             storage::PageId next, storage::Page* page) const {
  const bool is_leaf = level == 0;
  const std::size_t cap = is_leaf ? max_leaf_ : max_internal_;
  if (entries.size() > cap) {
    return Status::ResourceExhausted(
        "node part with " + std::to_string(entries.size()) +
        " entries exceeds page capacity " + std::to_string(cap));
  }
  page->bytes.fill(0);
  Writer w(page);
  w.Put<std::uint16_t>(kMagic);
  w.Put<std::uint16_t>(level);
  w.Put<std::uint16_t>(static_cast<std::uint16_t>(entries.size()));
  w.Put<std::uint16_t>(static_cast<std::uint16_t>(dim_));
  w.Put<std::uint16_t>(box_leaves_ ? kFlagBoxLeaves : 0);
  w.Put<std::uint32_t>(next);
  for (const Entry& e : entries) {
    if (e.mbr.dim() != dim_) {
      return Status::InvalidArgument("entry dimensionality mismatch: expected " +
                                     std::to_string(dim_) + ", got " +
                                     std::to_string(e.mbr.dim()));
    }
    if (e.mbr.empty()) {
      return Status::InvalidArgument("cannot encode an empty MBR entry");
    }
    if (is_leaf) {
      w.Put<std::uint64_t>(e.record);
      for (std::size_t i = 0; i < dim_; ++i) w.Put<double>(e.mbr.lo()[i]);
      if (box_leaves_) {
        for (std::size_t i = 0; i < dim_; ++i) w.Put<double>(e.mbr.hi()[i]);
      }
    } else {
      w.Put<std::uint32_t>(e.child);
      for (std::size_t i = 0; i < dim_; ++i) w.Put<double>(e.mbr.lo()[i]);
      for (std::size_t i = 0; i < dim_; ++i) w.Put<double>(e.mbr.hi()[i]);
    }
  }
  return Status::OK();
}

Result<NodePart> NodeCodec::DecodePart(const storage::Page& page) const {
  Reader r(&page);
  const std::uint16_t magic = r.Get<std::uint16_t>();
  if (magic != kMagic) {
    return Status::Corruption("bad node magic " + std::to_string(magic));
  }
  NodePart part;
  part.level = r.Get<std::uint16_t>();
  const std::uint16_t count = r.Get<std::uint16_t>();
  const std::uint16_t dim = r.Get<std::uint16_t>();
  const std::uint16_t flags = r.Get<std::uint16_t>();
  part.next = r.Get<std::uint32_t>();
  if ((flags & kFlagBoxLeaves) != (box_leaves_ ? kFlagBoxLeaves : 0)) {
    return Status::Corruption("node leaf-layout flag does not match codec");
  }
  if (dim != dim_) {
    return Status::Corruption("node dim " + std::to_string(dim) +
                              " does not match codec dim " + std::to_string(dim_));
  }
  const bool is_leaf = part.level == 0;
  const std::size_t cap = is_leaf ? max_leaf_ : max_internal_;
  if (count > cap) {
    return Status::Corruption("node entry count " + std::to_string(count) +
                              " exceeds capacity " + std::to_string(cap));
  }
  part.entries.reserve(count);
  geom::Vec lo(dim_);
  geom::Vec hi(dim_);
  for (std::uint16_t k = 0; k < count; ++k) {
    Entry e;
    const bool has_box = !is_leaf || box_leaves_;
    if (is_leaf) {
      e.record = r.Get<std::uint64_t>();
    } else {
      e.child = r.Get<std::uint32_t>();
    }
    for (std::size_t i = 0; i < dim_; ++i) lo[i] = r.Get<double>();
    if (has_box) {
      for (std::size_t i = 0; i < dim_; ++i) hi[i] = r.Get<double>();
    }
    // The coordinates come straight from an untrusted page image; validate
    // them here so corruption surfaces as a Status instead of tripping the
    // Mbr invariant checks (no NaN/inf, lo <= hi) further in - in checked
    // builds those abort, which would turn bad bytes into a crash.
    for (std::size_t i = 0; i < dim_; ++i) {
      if (!std::isfinite(lo[i]) || (has_box && !std::isfinite(hi[i]))) {
        return Status::Corruption("node entry " + std::to_string(k) +
                                  " has a non-finite coordinate");
      }
      if (has_box && lo[i] > hi[i]) {
        return Status::Corruption("node entry " + std::to_string(k) +
                                  " has an inverted box (lo > hi) in dim " +
                                  std::to_string(i));
      }
    }
    e.mbr = has_box ? geom::Mbr::FromCorners(lo, hi)
                    : geom::Mbr::FromCorners(lo, lo);
    part.entries.push_back(std::move(e));
  }
  return part;
}

Status NodeCodec::Encode(const Node& node, storage::Page* page) const {
  return EncodePart(node.level, node.entries, storage::kInvalidPageId, page);
}

Result<Node> NodeCodec::Decode(const storage::Page& page) const {
  Result<NodePart> part = DecodePart(page);
  if (!part.ok()) return part.status();
  if (part->next != storage::kInvalidPageId) {
    return Status::FailedPrecondition(
        "page is part of a supernode chain; use DecodePart");
  }
  Node node;
  node.level = part->level;
  node.entries = std::move(part->entries);
  return node;
}

}  // namespace tsss::index
