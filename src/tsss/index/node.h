#ifndef TSSS_INDEX_NODE_H_
#define TSSS_INDEX_NODE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/geom/mbr.h"
#include "tsss/storage/page.h"

namespace tsss::index {

/// Opaque record identifier stored in leaf entries. The engine packs
/// (series id, window offset) into it; the index never interprets it.
using RecordId = std::uint64_t;

/// One slot of an R-tree node.
///
/// Internal nodes hold <child page, MBR> pairs; leaf nodes hold
/// <record id, point> pairs (paper, Section 6). In memory a leaf point is
/// represented as a degenerate MBR (lo == hi) so that the split algorithms
/// work on both node kinds unchanged.
struct Entry {
  geom::Mbr mbr;
  storage::PageId child = storage::kInvalidPageId;  ///< internal entries only
  RecordId record = 0;                              ///< leaf entries only

  static Entry ForChild(storage::PageId child, geom::Mbr mbr) {
    Entry e{std::move(mbr), child, 0};
    return e;
  }
  static Entry ForRecord(RecordId record, std::span<const double> point) {
    Entry e{geom::Mbr::FromPoint(point), storage::kInvalidPageId, record};
    return e;
  }
};

/// Decoded R-tree node. level == 0 means leaf; the root has the highest
/// level. A node always fits in one 4 KiB page (enforced by NodeCodec).
struct Node {
  std::uint16_t level = 0;
  std::vector<Entry> entries;

  bool is_leaf() const { return level == 0; }
  std::size_t size() const { return entries.size(); }

  /// Tight bounding box over all entries.
  geom::Mbr ComputeMbr(std::size_t dim) const;
};

/// One page's worth of a (possibly multi-page) node. Ordinary nodes occupy a
/// single page with next == kInvalidPageId; X-tree style supernodes chain
/// continuation pages through `next`.
struct NodePart {
  std::uint16_t level = 0;
  storage::PageId next = storage::kInvalidPageId;
  std::vector<Entry> entries;
};

/// Fixed-layout serializer between Node parts and 4 KiB pages.
///
/// Layout (little-endian, host representation for doubles):
///   header:  magic u16 | level u16 | count u16 | dim u16 | flags u16 | next u32
///   internal entry: child u32 | lo[dim] f64 | hi[dim] f64
///   leaf entry:     record u64 | point[dim] f64            (point leaves)
///   leaf entry:     record u64 | lo[dim] f64 | hi[dim] f64 (box leaves)
class NodeCodec {
 public:
  /// `box_leaves` selects the leaf entry layout: false = point entries
  /// (record + point, the paper's default), true = box entries
  /// (record + lo + hi, used for sub-trail MBR leaves following the
  /// ST-index of Faloutsos et al. [2]).
  explicit NodeCodec(std::size_t dim, bool box_leaves = false);

  std::size_t dim() const { return dim_; }
  bool box_leaves() const { return box_leaves_; }

  /// Hard per-page capacity limits imposed by the page size.
  std::size_t max_internal_entries() const { return max_internal_; }
  std::size_t max_leaf_entries() const { return max_leaf_; }

  /// Serializes a single-page node into `page` (next = invalid). Fails if
  /// the node exceeds the page capacity - multi-page nodes must go through
  /// EncodePart.
  Status Encode(const Node& node, storage::Page* page) const;

  /// Deserializes a single-page node; fails with FailedPrecondition if the
  /// page is part of a chain (callers that support supernodes use
  /// DecodePart).
  Result<Node> Decode(const storage::Page& page) const;

  /// Serializes one chain part: `entries` (at most the per-page capacity for
  /// the node kind) plus the link to the next part.
  Status EncodePart(std::uint16_t level, std::span<const Entry> entries,
                    storage::PageId next, storage::Page* page) const;

  /// Deserializes one chain part.
  Result<NodePart> DecodePart(const storage::Page& page) const;

 private:
  std::size_t dim_;
  bool box_leaves_;
  std::size_t max_internal_;
  std::size_t max_leaf_;
};

}  // namespace tsss::index

#endif  // TSSS_INDEX_NODE_H_
