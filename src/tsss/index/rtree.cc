#include "tsss/index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "tsss/common/exec_control.h"

namespace tsss::index {

namespace {

/// Upper bound on tree height used to size per-insert bookkeeping. A tree
/// with branching factor >= 2 and 2^48 entries stays far below this.
constexpr std::size_t kMaxHeight = 64;

}  // namespace

RTree::RTree(storage::BufferPool* pool, const RTreeConfig& config)
    : pool_(pool), config_(config), codec_(config.dim, config.box_leaves) {}

namespace {

/// Shared validation for Create/Attach; returns the resolved leaf capacity.
Result<std::size_t> ValidateConfig(const RTreeConfig& config) {
  if (config.dim == 0) {
    return Status::InvalidArgument("RTree dim must be positive");
  }
  NodeCodec codec(config.dim, config.box_leaves);
  if (config.max_entries < 2) {
    return Status::InvalidArgument("RTree max_entries must be >= 2");
  }
  if (config.max_entries + 1 > codec.max_internal_entries()) {
    return Status::InvalidArgument(
        "RTree max_entries " + std::to_string(config.max_entries) +
        " exceeds internal page capacity " +
        std::to_string(codec.max_internal_entries()) +
        " (need M+1 slots) for dim " + std::to_string(config.dim));
  }
  std::size_t leaf_max = config.leaf_max_entries;
  if (leaf_max == 0) {
    leaf_max = codec.max_leaf_entries() - 1;
  }
  if (leaf_max < 2 || leaf_max + 1 > codec.max_leaf_entries()) {
    return Status::InvalidArgument(
        "RTree leaf_max_entries " + std::to_string(leaf_max) +
        " out of range for leaf page capacity " +
        std::to_string(codec.max_leaf_entries()));
  }
  for (const std::size_t cap : {config.max_entries, leaf_max}) {
    const std::size_t m = config.MinFillOf(cap);
    if (2 * m > cap + 1) {
      return Status::InvalidArgument(
          "min_fill_fraction too large: 2*m must be <= capacity+1");
    }
    if (config.ReinsertOf(cap) > cap + 1 - m) {
      return Status::InvalidArgument(
          "reinsert_fraction too large: capacity+1-p must stay >= m");
    }
  }
  return leaf_max;
}

}  // namespace

Result<std::unique_ptr<RTree>> RTree::Create(storage::BufferPool* pool,
                                             const RTreeConfig& config) {
  Result<std::size_t> leaf_max = ValidateConfig(config);
  if (!leaf_max.ok()) return leaf_max.status();
  auto tree = std::unique_ptr<RTree>(new RTree(pool, config));
  tree->leaf_max_ = *leaf_max;
  // Allocate the (initially empty leaf) root.
  Result<storage::PageGuard> guard = pool->New();
  if (!guard.ok()) return guard.status();
  tree->root_ = guard->id();
  Node root;
  root.level = 0;
  Status s = tree->codec_.Encode(root, &guard->MutablePage());
  if (!s.ok()) return s;
  return tree;
}

Result<std::unique_ptr<RTree>> RTree::Attach(storage::BufferPool* pool,
                                             const RTreeConfig& config,
                                             storage::PageId root,
                                             std::size_t height,
                                             std::size_t size) {
  Result<std::size_t> leaf_max = ValidateConfig(config);
  if (!leaf_max.ok()) return leaf_max.status();
  if (height == 0) {
    return Status::InvalidArgument("attached tree height must be >= 1");
  }
  auto tree = std::unique_ptr<RTree>(new RTree(pool, config));
  tree->leaf_max_ = *leaf_max;
  tree->root_ = root;
  tree->height_ = height;
  tree->size_ = size;
  // Validate the root page decodes and its level matches the height.
  Result<Node> root_node = tree->LoadNode(root);
  if (!root_node.ok()) return root_node.status();
  if (root_node->level != height - 1) {
    return Status::Corruption("attached root level " +
                              std::to_string(root_node->level) +
                              " does not match height " + std::to_string(height));
  }
  return tree;
}

Result<Node> RTree::LoadNode(storage::PageId id) const {
  // Cooperative cancellation: the query service bounds requests with a
  // deadline; one check per node keeps the granularity coarse enough to be
  // free and fine enough that a runaway query unwinds promptly.
  if (const ExecControl* control = CurrentExecControl()) {
    Status s = control->Check();
    if (!s.ok()) return s;
  }
  Node node;
  storage::PageId cur = id;
  bool first = true;
  while (cur != storage::kInvalidPageId) {
    Result<storage::PageGuard> guard = pool_->Fetch(cur);
    if (!guard.ok()) return guard.status();
    Result<NodePart> part = codec_.DecodePart(guard->page());
    if (!part.ok()) return part.status();
    if (first) {
      node.level = part->level;
      node.entries = std::move(part->entries);
      first = false;
    } else {
      if (part->level != node.level) {
        return Status::Corruption("supernode chain mixes levels");
      }
      node.entries.insert(node.entries.end(),
                          std::make_move_iterator(part->entries.begin()),
                          std::make_move_iterator(part->entries.end()));
    }
    cur = part->next;
  }
  return node;
}

Result<std::vector<storage::PageId>> RTree::ChainPages(storage::PageId id) {
  std::vector<storage::PageId> chain;
  storage::PageId cur = id;
  while (cur != storage::kInvalidPageId) {
    chain.push_back(cur);
    Result<storage::PageGuard> guard = pool_->Fetch(cur);
    if (!guard.ok()) return guard.status();
    Result<NodePart> part = codec_.DecodePart(guard->page());
    if (!part.ok()) return part.status();
    cur = part->next;
    if (chain.size() > 1u << 20) {
      return Status::Corruption("supernode chain cycle suspected");
    }
  }
  return chain;
}

Status RTree::FreeNodeChain(storage::PageId id) {
  Result<std::vector<storage::PageId>> chain = ChainPages(id);
  if (!chain.ok()) return chain.status();
  for (storage::PageId page : *chain) {
    Status s = pool_->Delete(page);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status RTree::WriteChain(const Node& node, std::vector<storage::PageId> chain) {
  const std::size_t per_page =
      node.is_leaf() ? codec_.max_leaf_entries() : codec_.max_internal_entries();
  const std::size_t needed =
      std::max<std::size_t>(1, (node.entries.size() + per_page - 1) / per_page);
  while (chain.size() < needed) {
    Result<storage::PageGuard> guard = pool_->New();
    if (!guard.ok()) return guard.status();
    chain.push_back(guard->id());
  }
  while (chain.size() > needed) {
    Status s = pool_->Delete(chain.back());
    if (!s.ok()) return s;
    chain.pop_back();
  }

  std::size_t pos = 0;
  for (std::size_t k = 0; k < needed; ++k) {
    const std::size_t count = std::min(per_page, node.entries.size() - pos);
    Result<storage::PageGuard> guard = pool_->Fetch(chain[k]);
    if (!guard.ok()) return guard.status();
    const storage::PageId next =
        k + 1 < needed ? chain[k + 1] : storage::kInvalidPageId;
    Status s = codec_.EncodePart(
        node.level, std::span<const Entry>(node.entries.data() + pos, count),
        next, &guard->MutablePage());
    if (!s.ok()) return s;
    pos += count;
  }
  return Status::OK();
}

Status RTree::StoreNode(storage::PageId id, const Node& node) {
  Result<std::vector<storage::PageId>> existing = ChainPages(id);
  if (!existing.ok()) return existing.status();
  return WriteChain(node, std::move(existing).value());
}

Result<storage::PageId> RTree::StoreNewNode(const Node& node) {
  Result<storage::PageGuard> guard = pool_->New();
  if (!guard.ok()) return guard.status();
  const storage::PageId id = guard->id();
  guard->Release();
  Status s = WriteChain(node, {id});
  if (!s.ok()) return s;
  return id;
}

Result<std::vector<RTree::PathStep>> RTree::ChoosePath(
    const geom::Mbr& mbr, std::uint16_t target_level) {
  std::vector<PathStep> path;
  path.push_back(PathStep{root_, 0});
  Result<Node> node = LoadNode(root_);
  if (!node.ok()) return node.status();
  if (node->level < target_level) {
    return Status::Internal("ChoosePath target level above the root");
  }
  while (node->level > target_level) {
    const bool children_are_leaves = node->level == 1;
    std::size_t best = 0;
    if (children_are_leaves && config_.split == SplitAlgorithm::kRStar) {
      // R* ChooseSubtree at the leaf level: minimise overlap enlargement,
      // ties by volume enlargement, then by volume.
      double best_overlap_growth = std::numeric_limits<double>::infinity();
      double best_vol_growth = std::numeric_limits<double>::infinity();
      double best_vol = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < node->entries.size(); ++i) {
        geom::Mbr grown = node->entries[i].mbr;
        grown.Extend(mbr);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (std::size_t j = 0; j < node->entries.size(); ++j) {
          if (j == i) continue;
          overlap_before += node->entries[i].mbr.OverlapVolume(node->entries[j].mbr);
          overlap_after += grown.OverlapVolume(node->entries[j].mbr);
        }
        const double overlap_growth = overlap_after - overlap_before;
        const double vol = node->entries[i].mbr.Volume();
        const double vol_growth = grown.Volume() - vol;
        if (overlap_growth < best_overlap_growth ||
            (overlap_growth == best_overlap_growth &&
             (vol_growth < best_vol_growth ||
              (vol_growth == best_vol_growth && vol < best_vol)))) {
          best_overlap_growth = overlap_growth;
          best_vol_growth = vol_growth;
          best_vol = vol;
          best = i;
        }
      }
    } else {
      // Guttman ChooseLeaf / R* above leaf level: minimise volume
      // enlargement, ties by volume.
      double best_vol_growth = std::numeric_limits<double>::infinity();
      double best_vol = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < node->entries.size(); ++i) {
        const double vol = node->entries[i].mbr.Volume();
        const double vol_growth = node->entries[i].mbr.EnlargedVolume(mbr) - vol;
        if (vol_growth < best_vol_growth ||
            (vol_growth == best_vol_growth && vol < best_vol)) {
          best_vol_growth = vol_growth;
          best_vol = vol;
          best = i;
        }
      }
    }
    const storage::PageId child = node->entries[best].child;
    path.push_back(PathStep{child, best});
    node = LoadNode(child);
    if (!node.ok()) return node.status();
  }
  return path;
}

std::vector<Entry> RTree::TakeFarthestEntries(Node* node, std::size_t count) {
  const geom::Mbr box = node->ComputeMbr(config_.dim);
  const geom::Vec center = box.Center();
  std::vector<std::pair<double, std::size_t>> by_dist;
  by_dist.reserve(node->entries.size());
  for (std::size_t i = 0; i < node->entries.size(); ++i) {
    const geom::Vec c = node->entries[i].mbr.Center();
    by_dist.emplace_back(geom::DistanceSquared(c, center), i);
  }
  std::sort(by_dist.begin(), by_dist.end());
  // The `count` farthest entries leave the node; they are returned
  // closest-first, the reinsertion order R* found to work best.
  std::vector<Entry> removed;
  removed.reserve(count);
  std::vector<bool> take(node->entries.size(), false);
  for (std::size_t k = by_dist.size() - count; k < by_dist.size(); ++k) {
    take[by_dist[k].second] = true;
  }
  for (std::size_t k = by_dist.size() - count; k < by_dist.size(); ++k) {
    removed.push_back(node->entries[by_dist[k].second]);
  }
  std::reverse(removed.begin(), removed.end());  // closest of the removed first
  std::vector<Entry> kept;
  kept.reserve(node->entries.size() - count);
  for (std::size_t i = 0; i < node->entries.size(); ++i) {
    if (!take[i]) kept.push_back(std::move(node->entries[i]));
  }
  node->entries = std::move(kept);
  return removed;
}

Status RTree::GrowRoot(Entry old_root_entry, Entry sibling_entry) {
  Result<storage::PageGuard> guard = pool_->New();
  if (!guard.ok()) return guard.status();
  Node new_root;
  Result<Node> old_root = LoadNode(root_);
  if (!old_root.ok()) return old_root.status();
  new_root.level = static_cast<std::uint16_t>(old_root->level + 1);
  new_root.entries.push_back(std::move(old_root_entry));
  new_root.entries.push_back(std::move(sibling_entry));
  Status s = codec_.Encode(new_root, &guard->MutablePage());
  if (!s.ok()) return s;
  root_ = guard->id();
  ++height_;
  return Status::OK();
}

Status RTree::PropagateUp(std::vector<PathStep> path,
                          std::vector<bool>& reinserted_at_level) {
  std::vector<std::pair<Entry, std::uint16_t>> pending;

  for (std::size_t i = path.size(); i-- > 0;) {
    Result<Node> node = LoadNode(path[i].page);
    if (!node.ok()) return node.status();
    std::optional<Entry> sibling;

    if (node->entries.size() > MaxFor(*node)) {
      const bool is_root = i == 0;
      // X-tree supernode check (internal nodes only): if the best split of
      // this node is hopelessly overlapping, keep it as a multi-page node.
      if (config_.enable_supernodes && !node->is_leaf() &&
          node->entries.size() <=
              config_.max_entries * config_.max_supernode_multiple) {
        SplitResult trial = SplitEntries(node->entries, config_.dim,
                                         MinFor(*node), config_.split);
        geom::Mbr left_box(config_.dim);
        geom::Mbr right_box(config_.dim);
        for (const Entry& e : trial.left) left_box.Extend(e.mbr);
        for (const Entry& e : trial.right) right_box.Extend(e.mbr);
        const double overlap = left_box.OverlapVolume(right_box);
        const double union_vol =
            left_box.Volume() + right_box.Volume() - overlap;
        const double frac = union_vol > 0.0 ? overlap / union_vol : 0.0;
        if (frac > config_.supernode_overlap_fraction) {
          // Stay a supernode: store the (overfull) node and continue the
          // bottom-up MBR maintenance without a sibling.
          Status s = StoreNode(path[i].page, *node);
          if (!s.ok()) return s;
          if (i == 0) break;
          Result<Node> parent = LoadNode(path[i - 1].page);
          if (!parent.ok()) return parent.status();
          if (path[i].index_in_parent >= parent->entries.size() ||
              parent->entries[path[i].index_in_parent].child != path[i].page) {
            return Status::Internal("path/parent mismatch during propagation");
          }
          parent->entries[path[i].index_in_parent].mbr =
              node->ComputeMbr(config_.dim);
          s = StoreNode(path[i - 1].page, *parent);
          if (!s.ok()) return s;
          continue;
        }
        // Low overlap: adopt the trial split directly. The halves of a big
        // supernode can exceed one page, so write them chain-aware.
        node->entries = std::move(trial.left);
        Node right;
        right.level = node->level;
        right.entries = std::move(trial.right);
        Result<storage::PageId> right_page = StoreNewNode(right);
        if (!right_page.ok()) return right_page.status();
        Entry sib = Entry::ForChild(*right_page, right.ComputeMbr(config_.dim));
        Status s = StoreNode(path[i].page, *node);
        if (!s.ok()) return s;
        if (i == 0) {
          Entry old_root_entry =
              Entry::ForChild(path[0].page, node->ComputeMbr(config_.dim));
          return GrowRoot(std::move(old_root_entry), std::move(sib));
        }
        Result<Node> parent = LoadNode(path[i - 1].page);
        if (!parent.ok()) return parent.status();
        parent->entries[path[i].index_in_parent].mbr =
            node->ComputeMbr(config_.dim);
        parent->entries.push_back(std::move(sib));
        s = StoreNode(path[i - 1].page, *parent);
        if (!s.ok()) return s;
        continue;
      }
      const std::size_t p = config_.ReinsertOf(MaxFor(*node));
      const bool can_reinsert = !is_root && p > 0 &&
                                config_.split == SplitAlgorithm::kRStar &&
                                node->level < reinserted_at_level.size() &&
                                !reinserted_at_level[node->level];
      if (can_reinsert) {
        reinserted_at_level[node->level] = true;
        std::vector<Entry> removed = TakeFarthestEntries(&*node, p);
        for (Entry& e : removed) {
          pending.emplace_back(std::move(e), node->level);
        }
      } else {
        SplitResult split = SplitEntries(std::move(node->entries), config_.dim,
                                         MinFor(*node), config_.split);
        node->entries = std::move(split.left);
        Node right;
        right.level = node->level;
        right.entries = std::move(split.right);
        Result<storage::PageId> right_page = StoreNewNode(right);
        if (!right_page.ok()) return right_page.status();
        sibling = Entry::ForChild(*right_page, right.ComputeMbr(config_.dim));
      }
    }

    Status s = StoreNode(path[i].page, *node);
    if (!s.ok()) return s;

    if (i == 0) {
      if (sibling.has_value()) {
        Entry old_root_entry =
            Entry::ForChild(path[0].page, node->ComputeMbr(config_.dim));
        s = GrowRoot(std::move(old_root_entry), std::move(*sibling));
        if (!s.ok()) return s;
      }
      break;
    }

    Result<Node> parent = LoadNode(path[i - 1].page);
    if (!parent.ok()) return parent.status();
    if (path[i].index_in_parent >= parent->entries.size() ||
        parent->entries[path[i].index_in_parent].child != path[i].page) {
      return Status::Internal("path/parent mismatch during propagation");
    }
    parent->entries[path[i].index_in_parent].mbr = node->ComputeMbr(config_.dim);
    if (sibling.has_value()) parent->entries.push_back(std::move(*sibling));
    s = StoreNode(path[i - 1].page, *parent);
    if (!s.ok()) return s;
  }

  for (auto& [entry, level] : pending) {
    Status s = InsertEntry(std::move(entry), level, reinserted_at_level);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status RTree::InsertEntry(Entry entry, std::uint16_t target_level,
                          std::vector<bool>& reinserted_at_level) {
  Result<std::vector<PathStep>> path = ChoosePath(entry.mbr, target_level);
  if (!path.ok()) return path.status();
  Result<Node> node = LoadNode(path->back().page);
  if (!node.ok()) return node.status();
  node->entries.push_back(std::move(entry));
  // An overfull node (M+1 entries) still fits the page: Create() enforces
  // M+1 <= page capacity, and PropagateUp resolves the overflow next.
  Status s = StoreNode(path->back().page, *node);
  if (!s.ok()) return s;
  return PropagateUp(std::move(*path), reinserted_at_level);
}

Status RTree::Insert(std::span<const double> point, RecordId record) {
  if (point.size() != config_.dim) {
    return Status::InvalidArgument("point dim " + std::to_string(point.size()) +
                                   " != tree dim " + std::to_string(config_.dim));
  }
  std::vector<bool> reinserted(kMaxHeight, false);
  Status s = InsertEntry(Entry::ForRecord(record, point), 0, reinserted);
  if (!s.ok()) return s;
  ++size_;
  return Status::OK();
}

Status RTree::InsertBox(const geom::Mbr& box, RecordId record) {
  if (!config_.box_leaves) {
    return Status::FailedPrecondition(
        "InsertBox requires a tree configured with box_leaves");
  }
  if (box.dim() != config_.dim || box.empty()) {
    return Status::InvalidArgument("box dim mismatch or empty box");
  }
  Entry e;
  e.mbr = box;
  e.record = record;
  std::vector<bool> reinserted(kMaxHeight, false);
  Status s = InsertEntry(std::move(e), 0, reinserted);
  if (!s.ok()) return s;
  ++size_;
  return Status::OK();
}

Result<std::optional<std::vector<RTree::PathStep>>> RTree::FindLeaf(
    storage::PageId page, std::uint16_t level, const geom::Mbr& target,
    RecordId record, std::vector<PathStep>& path) {
  Result<Node> node = LoadNode(page);
  if (!node.ok()) return node.status();
  if (node->is_leaf()) {
    for (const Entry& e : node->entries) {
      if (e.record == record && e.mbr == target) {
        return std::optional<std::vector<PathStep>>(path);
      }
    }
    return std::optional<std::vector<PathStep>>();
  }
  for (std::size_t i = 0; i < node->entries.size(); ++i) {
    const Entry& e = node->entries[i];
    if (!e.mbr.Contains(target)) continue;
    path.push_back(PathStep{e.child, i});
    Result<std::optional<std::vector<PathStep>>> found =
        FindLeaf(e.child, static_cast<std::uint16_t>(level - 1), target, record,
                 path);
    if (!found.ok()) return found.status();
    if (found->has_value()) return found;
    path.pop_back();
  }
  return std::optional<std::vector<PathStep>>();
}

Status RTree::CondenseTree(std::vector<PathStep> path) {
  std::vector<std::pair<Entry, std::uint16_t>> orphans;

  for (std::size_t i = path.size(); i-- > 1;) {
    Result<Node> node = LoadNode(path[i].page);
    if (!node.ok()) return node.status();
    Result<Node> parent = LoadNode(path[i - 1].page);
    if (!parent.ok()) return parent.status();

    // Locate this node's entry in its parent by child id (indices may have
    // shifted if callers mutated the parent).
    std::size_t idx = parent->entries.size();
    for (std::size_t j = 0; j < parent->entries.size(); ++j) {
      if (parent->entries[j].child == path[i].page) {
        idx = j;
        break;
      }
    }
    if (idx == parent->entries.size()) {
      return Status::Internal("condense: child entry missing from parent");
    }

    if (node->entries.size() < MinFor(*node)) {
      for (Entry& e : node->entries) {
        orphans.emplace_back(std::move(e), node->level);
      }
      parent->entries.erase(parent->entries.begin() +
                            static_cast<std::ptrdiff_t>(idx));
      Status s = StoreNode(path[i - 1].page, *parent);
      if (!s.ok()) return s;
      s = FreeNodeChain(path[i].page);
      if (!s.ok()) return s;
    } else {
      parent->entries[idx].mbr = node->ComputeMbr(config_.dim);
      Status s = StoreNode(path[i - 1].page, *parent);
      if (!s.ok()) return s;
    }
  }

  // Reinsert orphans, highest level first so that target levels still exist.
  std::stable_sort(orphans.begin(), orphans.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  for (auto& [entry, level] : orphans) {
    std::vector<bool> reinserted(kMaxHeight, false);
    Status s = InsertEntry(std::move(entry), level, reinserted);
    if (!s.ok()) return s;
  }

  // Shrink the root while it is an internal node with a single child.
  while (true) {
    Result<Node> root = LoadNode(root_);
    if (!root.ok()) return root.status();
    if (root->is_leaf() || root->entries.size() != 1) break;
    const storage::PageId child = root->entries[0].child;
    Status s = FreeNodeChain(root_);
    if (!s.ok()) return s;
    root_ = child;
    --height_;
  }
  return Status::OK();
}

Status RTree::Delete(std::span<const double> point, RecordId record) {
  if (point.size() != config_.dim) {
    return Status::InvalidArgument("point dim " + std::to_string(point.size()) +
                                   " != tree dim " + std::to_string(config_.dim));
  }
  return DeleteBox(geom::Mbr::FromPoint(point), record);
}

Status RTree::DeleteBox(const geom::Mbr& target, RecordId record) {
  if (target.dim() != config_.dim || target.empty()) {
    return Status::InvalidArgument("box dim mismatch or empty box");
  }
  std::vector<PathStep> path;
  path.push_back(PathStep{root_, 0});
  Result<std::optional<std::vector<PathStep>>> found =
      FindLeaf(root_, static_cast<std::uint16_t>(height_ - 1), target, record,
               path);
  if (!found.ok()) return found.status();
  if (!found->has_value()) {
    return Status::NotFound("no entry for record " + std::to_string(record));
  }
  const std::vector<PathStep>& leaf_path = **found;

  Result<Node> leaf = LoadNode(leaf_path.back().page);
  if (!leaf.ok()) return leaf.status();
  bool erased = false;
  for (std::size_t i = 0; i < leaf->entries.size(); ++i) {
    if (leaf->entries[i].record == record && leaf->entries[i].mbr == target) {
      leaf->entries.erase(leaf->entries.begin() + static_cast<std::ptrdiff_t>(i));
      erased = true;
      break;
    }
  }
  if (!erased) return Status::Internal("FindLeaf result went stale");
  Status s = StoreNode(leaf_path.back().page, *leaf);
  if (!s.ok()) return s;
  --size_;
  return CondenseTree(leaf_path);
}

Result<std::vector<RecordId>> RTree::RangeQuery(const geom::Mbr& box) const {
  if (box.dim() != config_.dim) {
    return Status::InvalidArgument("query box dim mismatch");
  }
  std::vector<RecordId> out;
  std::vector<storage::PageId> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const storage::PageId page = stack.back();
    stack.pop_back();
    Result<Node> node = LoadNode(page);
    if (!node.ok()) return node.status();
    for (const Entry& e : node->entries) {
      if (!box.Intersects(e.mbr)) continue;
      if (node->is_leaf()) {
        out.push_back(e.record);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  return out;
}

Status RTree::VisitNodes(
    const std::function<void(const Node&, storage::PageId)>& fn) const {
  std::vector<storage::PageId> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const storage::PageId page = stack.back();
    stack.pop_back();
    Result<Node> node = LoadNode(page);
    if (!node.ok()) return node.status();
    fn(*node, page);
    if (!node->is_leaf()) {
      for (const Entry& e : node->entries) stack.push_back(e.child);
    }
  }
  return Status::OK();
}

namespace {

/// Validates one entry box: dimensionality, finiteness, lo <= hi, and (for
/// point-mode leaves) degeneracy. Returns a Corruption status naming the page.
Status CheckEntryBox(const geom::Mbr& box, std::size_t dim, bool expect_point,
                     storage::PageId page) {
  const std::string where = " (page " + std::to_string(page) + ")";
  if (box.empty()) {
    return Status::Corruption("entry has empty MBR" + where);
  }
  if (box.dim() != dim) {
    return Status::Corruption("entry MBR dim " + std::to_string(box.dim()) +
                              " != tree dim " + std::to_string(dim) + where);
  }
  for (std::size_t d = 0; d < dim; ++d) {
    if (!std::isfinite(box.lo()[d]) || !std::isfinite(box.hi()[d])) {
      return Status::Corruption("entry MBR has non-finite coordinate" + where);
    }
    if (box.lo()[d] > box.hi()[d]) {
      return Status::Corruption("entry MBR inverted (lo > hi) in dim " +
                                std::to_string(d) + where);
    }
    if (expect_point && box.lo()[d] != box.hi()[d]) {
      return Status::Corruption(
          "point-mode leaf entry holds a non-degenerate box" + where);
    }
  }
  return Status::OK();
}

}  // namespace

Status RTree::CheckNode(storage::PageId page, std::uint16_t expected_level,
                        const geom::Mbr* parent_box, bool is_root,
                        std::size_t* entries_seen) {
  Result<Node> node = LoadNode(page);
  if (!node.ok()) return node.status();
  if (node->level != expected_level) {
    return Status::Corruption("node level " + std::to_string(node->level) +
                              " != expected " + std::to_string(expected_level));
  }
  if (!is_root) {
    if (node->entries.size() < MinFor(*node)) {
      return Status::Corruption("non-root node under-full: " +
                                std::to_string(node->entries.size()));
    }
  } else if (!node->is_leaf() && node->entries.size() < 2) {
    return Status::Corruption("internal root must have >= 2 entries");
  }
  std::size_t max_allowed = MaxFor(*node);
  if (config_.enable_supernodes && !node->is_leaf()) {
    max_allowed = config_.max_entries * config_.max_supernode_multiple;
  }
  if (node->entries.size() > max_allowed) {
    return Status::Corruption("node over-full: " +
                              std::to_string(node->entries.size()));
  }
  if (parent_box != nullptr) {
    const geom::Mbr self = node->ComputeMbr(config_.dim);
    if (!(*parent_box == self)) {
      return Status::Corruption("parent MBR is not tight for page " +
                                std::to_string(page));
    }
  }
  const bool expect_point = node->is_leaf() && !config_.box_leaves;
  for (const Entry& e : node->entries) {
    Status s = CheckEntryBox(e.mbr, config_.dim, expect_point, page);
    if (!s.ok()) return s;
    if (!node->is_leaf() && e.child == storage::kInvalidPageId) {
      return Status::Corruption("internal entry with invalid child page (page " +
                                std::to_string(page) + ")");
    }
  }
  if (node->is_leaf()) {
    *entries_seen += node->entries.size();
    return Status::OK();
  }
  for (const Entry& e : node->entries) {
    Status s = CheckNode(e.child, static_cast<std::uint16_t>(expected_level - 1),
                         &e.mbr, false, entries_seen);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status RTree::ValidateInvariants() {
  if (root_ == storage::kInvalidPageId) {
    return Status::Corruption("tree has no root page");
  }
  if (height_ == 0) {
    return Status::Corruption("tree height is zero");
  }
  std::size_t entries_seen = 0;
  Status s = CheckNode(root_, static_cast<std::uint16_t>(height_ - 1), nullptr,
                       true, &entries_seen);
  if (!s.ok()) return s;
  if (entries_seen != size_) {
    return Status::Corruption("entry count mismatch: tree says " +
                              std::to_string(size_) + ", walk found " +
                              std::to_string(entries_seen));
  }
  return Status::OK();
}

}  // namespace tsss::index
