#ifndef TSSS_INDEX_SPLIT_H_
#define TSSS_INDEX_SPLIT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "tsss/index/node.h"

namespace tsss::index {

/// Node-split algorithms for overflowing R-tree nodes.
///  * kLinear    — Guttman's linear-cost split (R-tree, 1984).
///  * kQuadratic — Guttman's quadratic-cost split.
///  * kRStar     — Beckmann et al.'s topological split (R*-tree, 1990):
///                 choose the split axis by minimum margin sum, then the
///                 distribution by minimum overlap.
enum class SplitAlgorithm : std::uint8_t {
  kLinear = 0,
  kQuadratic = 1,
  kRStar = 2,
};

std::string_view SplitAlgorithmToString(SplitAlgorithm algo);

/// Outcome of splitting an entry set into two groups.
struct SplitResult {
  std::vector<Entry> left;
  std::vector<Entry> right;
};

/// Splits `entries` (typically M+1 of them) into two groups, each with at
/// least `min_fill` entries. Requires entries.size() >= 2*min_fill and
/// min_fill >= 1.
SplitResult SplitEntries(std::vector<Entry> entries, std::size_t dim,
                         std::size_t min_fill, SplitAlgorithm algo);

}  // namespace tsss::index

#endif  // TSSS_INDEX_SPLIT_H_
