#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "tsss/index/rtree.h"

namespace tsss::index {
namespace {

/// Sort-Tile-Recursive partitioning: orders `entries` so that consecutive
/// chunks of `capacity` are spatially coherent. `dim_index` is the axis to
/// sort on at this recursion depth; `dims_left` how many axes remain.
void StrTile(std::vector<Entry>& entries, std::size_t begin, std::size_t end,
             std::size_t dim_index, std::size_t dims_left, std::size_t capacity,
             std::size_t dim) {
  const std::size_t n = end - begin;
  if (n <= capacity || dims_left <= 1) {
    std::sort(entries.begin() + static_cast<std::ptrdiff_t>(begin),
              entries.begin() + static_cast<std::ptrdiff_t>(end),
              [dim_index](const Entry& a, const Entry& b) {
                return a.mbr.lo()[dim_index] < b.mbr.lo()[dim_index];
              });
    return;
  }
  std::sort(entries.begin() + static_cast<std::ptrdiff_t>(begin),
            entries.begin() + static_cast<std::ptrdiff_t>(end),
            [dim_index](const Entry& a, const Entry& b) {
              return a.mbr.lo()[dim_index] < b.mbr.lo()[dim_index];
            });
  const double pages = std::ceil(static_cast<double>(n) /
                                 static_cast<double>(capacity));
  const std::size_t num_slabs = static_cast<std::size_t>(
      std::ceil(std::pow(pages, 1.0 / static_cast<double>(dims_left))));
  const std::size_t slab_size = (n + num_slabs - 1) / num_slabs;
  for (std::size_t s = begin; s < end; s += slab_size) {
    const std::size_t slab_end = std::min(s + slab_size, end);
    StrTile(entries, s, slab_end, (dim_index + 1) % dim, dims_left - 1, capacity,
            dim);
  }
}

}  // namespace

Status RTree::BulkLoad(std::vector<Entry> points) {
  for (const Entry& e : points) {
    if (e.mbr.dim() != config_.dim || e.mbr.empty()) {
      return Status::InvalidArgument("bulk load entry dim mismatch or empty");
    }
  }

  // Free the existing tree (including any supernode chain pages).
  std::vector<storage::PageId> old_pages;
  Status s = VisitNodes(
      [&old_pages](const Node&, storage::PageId page) { old_pages.push_back(page); });
  if (!s.ok()) return s;
  for (storage::PageId page : old_pages) {
    s = FreeNodeChain(page);
    if (!s.ok()) return s;
  }

  const std::size_t n = points.size();
  if (n == 0) {
    Result<storage::PageGuard> guard = pool_->New();
    if (!guard.ok()) return guard.status();
    Node root;
    root.level = 0;
    s = codec_.Encode(root, &guard->MutablePage());
    if (!s.ok()) return s;
    root_ = guard->id();
    height_ = 1;
    size_ = 0;
    return Status::OK();
  }

  // Pack leaves to (almost) full capacity. STR keeps sibling leaves
  // spatially tight, which is what makes bulk-loaded trees query well.
  StrTile(points, 0, n, 0, config_.dim, leaf_max_, config_.dim);

  std::uint16_t level = 0;
  std::vector<Entry> current = std::move(points);
  while (true) {
    const std::size_t capacity = level == 0 ? leaf_max_ : config_.max_entries;
    // Avoid producing a final group below the minimum fill: if the last
    // chunk would be smaller than min_entries, steal from the previous one.
    std::vector<Entry> parents;
    const std::size_t count = current.size();
    if (count <= capacity) {
      // One node absorbs everything: it becomes the root.
      Result<storage::PageGuard> guard = pool_->New();
      if (!guard.ok()) return guard.status();
      Node root;
      root.level = level;
      root.entries = std::move(current);
      s = codec_.Encode(root, &guard->MutablePage());
      if (!s.ok()) return s;
      root_ = guard->id();
      height_ = static_cast<std::size_t>(level) + 1;
      size_ = n;
      return Status::OK();
    }
    std::size_t begin = 0;
    while (begin < count) {
      std::size_t chunk = std::min(capacity, count - begin);
      const std::size_t rest = count - begin - chunk;
      if (rest > 0 && rest < config_.MinFillOf(capacity)) {
        // Rebalance so the final node meets min fill.
        chunk = count - begin - config_.MinFillOf(capacity);
      }
      Result<storage::PageGuard> guard = pool_->New();
      if (!guard.ok()) return guard.status();
      Node node;
      node.level = level;
      node.entries.assign(
          std::make_move_iterator(current.begin() +
                                  static_cast<std::ptrdiff_t>(begin)),
          std::make_move_iterator(current.begin() +
                                  static_cast<std::ptrdiff_t>(begin + chunk)));
      s = codec_.Encode(node, &guard->MutablePage());
      if (!s.ok()) return s;
      parents.push_back(Entry::ForChild(guard->id(), node.ComputeMbr(config_.dim)));
      begin += chunk;
    }
    current = std::move(parents);
    ++level;
  }
}

}  // namespace tsss::index
