#include <vector>

#include "tsss/index/rtree.h"
#include "tsss/obs/query_telemetry.h"

namespace tsss::index {

Result<std::vector<LineMatch>> RTree::LineQuery(
    const geom::Line& line, double eps, geom::PruneStrategy strategy,
    geom::PenetrationStats* stats) const {
  if (line.dim() != config_.dim) {
    return Status::InvalidArgument("query line dim mismatch");
  }
  if (eps < 0.0) {
    return Status::InvalidArgument("eps must be non-negative");
  }
  std::vector<LineMatch> out;
  std::vector<storage::PageId> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const storage::PageId page = stack.back();
    stack.pop_back();
    Result<Node> node = LoadNode(page);
    if (!node.ok()) return node.status();
    obs::TickNodeVisit(node->level);
    if (node->is_leaf()) {
      if (config_.box_leaves) {
        // Sub-trail mode: a box entry is a candidate when it passes the same
        // eps-penetration test used for directory nodes; the reported
        // distance is the exact line-box distance (a lower bound for every
        // window inside the box).
        for (const Entry& e : node->entries) {
          if (geom::ShouldVisit(line, e.mbr, eps, strategy, stats)) {
            obs::TickMbrDistanceEvals();
            obs::TickLeafCandidates();
            out.push_back(LineMatch{e.record, geom::LineMbrDistance(line, e.mbr)});
          }
        }
      } else {
        // Point-leaf check (Theorem 2): keep points whose PLD to the query
        // line is within eps.
        for (const Entry& e : node->entries) {
          const double d = geom::Pld(e.mbr.lo(), line);
          if (d <= eps) {
            obs::TickLeafCandidates();
            out.push_back(LineMatch{e.record, d});
          }
        }
      }
    } else {
      // Internal pruning (Theorem 3): descend only into children whose
      // eps-MBR passes the penetration test of the chosen strategy.
      for (const Entry& e : node->entries) {
        if (geom::ShouldVisit(line, e.mbr, eps, strategy, stats)) {
          stack.push_back(e.child);
        }
      }
    }
  }
  return out;
}

}  // namespace tsss::index
