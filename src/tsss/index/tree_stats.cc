#include <algorithm>
#include <limits>

#include "tsss/index/rtree.h"
#include "tsss/obs/metrics.h"

namespace tsss::index {

Result<TreeStats> RTree::ComputeStats() const {
  TreeStats stats;
  stats.height = height_;
  stats.entry_count = size_;

  std::size_t leaf_entry_sum = 0;
  std::size_t internal_entry_sum = 0;
  std::size_t internal_count = 0;
  double aspect_sum = 0.0;
  double diag_sum = 0.0;
  std::size_t box_count = 0;

  const NodeCodec codec(config_.dim);
  Status s = VisitNodes([&](const Node& node, storage::PageId) {
    ++stats.node_count;
    const std::size_t per_page =
        node.is_leaf() ? codec.max_leaf_entries() : codec.max_internal_entries();
    stats.node_pages += std::max<std::size_t>(
        1, (node.entries.size() + per_page - 1) / per_page);
    if (!node.is_leaf() && node.entries.size() > config_.max_entries) {
      ++stats.supernode_count;
    }
    if (node.is_leaf()) {
      ++stats.leaf_count;
      leaf_entry_sum += node.entries.size();
      stats.total_leaf_mbr_volume += node.ComputeMbr(config_.dim).Volume();
    } else {
      ++internal_count;
      internal_entry_sum += node.entries.size();
      // Pairwise overlap among sibling MBRs: the quantity the X-tree paper
      // ties to search degradation and the paper cites in Section 7.
      for (std::size_t i = 0; i < node.entries.size(); ++i) {
        for (std::size_t j = i + 1; j < node.entries.size(); ++j) {
          stats.total_overlap_volume +=
              node.entries[i].mbr.OverlapVolume(node.entries[j].mbr);
        }
      }
      // Shape of child boxes: long-thin MBRs are why bounding spheres fail
      // (Section 7 discussion, SR-tree observation).
      for (const Entry& e : node.entries) {
        double shortest = std::numeric_limits<double>::infinity();
        double longest = 0.0;
        for (std::size_t d = 0; d < config_.dim; ++d) {
          const double side = e.mbr.hi()[d] - e.mbr.lo()[d];
          shortest = std::min(shortest, side);
          longest = std::max(longest, side);
        }
        if (shortest > 0.0) {
          aspect_sum += longest / shortest;
          diag_sum += 2.0 * e.mbr.HalfDiagonal() / shortest;
          ++box_count;
        }
      }
    }
  });
  if (!s.ok()) return s;

  if (stats.leaf_count > 0) {
    stats.avg_leaf_fill =
        static_cast<double>(leaf_entry_sum) /
        (static_cast<double>(stats.leaf_count) * static_cast<double>(leaf_max_));
  }
  if (internal_count > 0) {
    stats.avg_internal_fill = static_cast<double>(internal_entry_sum) /
                              (static_cast<double>(internal_count) *
                               static_cast<double>(config_.max_entries));
  }
  if (box_count > 0) {
    stats.avg_aspect_ratio = aspect_sum / static_cast<double>(box_count);
    stats.avg_diag_to_min_side = diag_sum / static_cast<double>(box_count);
  }
  return stats;
}

Result<StructuralStats> RTree::ComputeStructuralStats() const {
  StructuralStats stats;
  stats.height = height_;
  stats.entry_count = size_;
  stats.levels.resize(height_);
  for (std::size_t l = 0; l < height_; ++l) stats.levels[l].level = l;

  // Per-level accumulators that need a second pass to turn into means.
  std::vector<double> dead_ratio_sum(height_, 0.0);
  std::vector<std::size_t> dead_ratio_count(height_, 0);
  bool level_out_of_range = false;

  Status s = VisitNodes([&](const Node& node, storage::PageId) {
    ++stats.node_count;
    if (!node.is_leaf() && node.entries.size() > config_.max_entries) {
      ++stats.supernode_count;
    }
    if (node.level >= height_) {
      level_out_of_range = true;
      return;
    }
    LevelStats& lv = stats.levels[node.level];
    const std::size_t fanout = node.entries.size();
    if (lv.nodes == 0 || fanout < lv.min_fanout) lv.min_fanout = fanout;
    if (fanout > lv.max_fanout) lv.max_fanout = fanout;
    ++lv.nodes;
    lv.entries += fanout;

    const std::size_t capacity =
        node.is_leaf() ? leaf_max_ : config_.max_entries;
    const double occupancy = capacity == 0
                                 ? 0.0
                                 : static_cast<double>(fanout) /
                                       static_cast<double>(capacity);
    auto bucket = static_cast<std::size_t>(occupancy * 10.0);
    lv.occupancy_histogram[bucket > 9 ? 9 : bucket] += 1;

    const geom::Mbr node_box = node.ComputeMbr(config_.dim);
    lv.margin_sum += node_box.Margin();
    const double node_volume = node_box.Volume();
    if (node_volume > 0.0) {
      double covered = 0.0;
      for (const Entry& e : node.entries) covered += e.mbr.Volume();
      const double dead = node_volume - covered;
      dead_ratio_sum[node.level] += std::max(0.0, dead) / node_volume;
      ++dead_ratio_count[node.level];
    }
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      for (std::size_t j = i + 1; j < node.entries.size(); ++j) {
        lv.overlap_volume +=
            node.entries[i].mbr.OverlapVolume(node.entries[j].mbr);
      }
    }
  });
  if (!s.ok()) return s;

  for (std::size_t l = 0; l < height_; ++l) {
    LevelStats& lv = stats.levels[l];
    if (lv.nodes > 0) {
      lv.avg_fanout =
          static_cast<double>(lv.entries) / static_cast<double>(lv.nodes);
      const std::size_t capacity = l == 0 ? leaf_max_ : config_.max_entries;
      if (capacity > 0) {
        lv.avg_occupancy = lv.avg_fanout / static_cast<double>(capacity);
      }
    }
    if (dead_ratio_count[l] > 0) {
      lv.dead_space_ratio =
          dead_ratio_sum[l] / static_cast<double>(dead_ratio_count[l]);
    }
  }

  // Depth uniformity: every level populated, one root, and each internal
  // level's entries exactly reference the nodes one level down.
  stats.depth_uniform = !level_out_of_range &&
                        stats.levels[height_ - 1].nodes == 1;
  for (std::size_t l = 0; stats.depth_uniform && l < height_; ++l) {
    if (stats.levels[l].nodes == 0) stats.depth_uniform = false;
    if (l >= 1 && stats.levels[l].entries != stats.levels[l - 1].nodes) {
      stats.depth_uniform = false;
    }
  }
  return stats;
}

void RegisterStructuralGauges(const StructuralStats& stats) {
  auto& registry = obs::MetricsRegistry::Global();
  auto set = [&registry](const char* name, const char* help, std::int64_t v) {
    registry.GetGauge(name, help)->Set(v);
  };
  set("tsss_tree_height", "R-tree height (levels)",
      static_cast<std::int64_t>(stats.height));
  set("tsss_tree_nodes", "R-tree logical node count",
      static_cast<std::int64_t>(stats.node_count));
  set("tsss_tree_entries", "R-tree data entry count",
      static_cast<std::int64_t>(stats.entry_count));
  set("tsss_tree_supernodes", "X-tree supernodes (multi-page nodes)",
      static_cast<std::int64_t>(stats.supernode_count));
  set("tsss_tree_depth_uniform", "1 iff every leaf sits at the same depth",
      stats.depth_uniform ? 1 : 0);
  if (!stats.levels.empty()) {
    const LevelStats& leaves = stats.levels.front();
    set("tsss_tree_leaf_occupancy_permille",
        "mean leaf occupancy, in permille of leaf capacity",
        static_cast<std::int64_t>(leaves.avg_occupancy * 1000.0));
    set("tsss_tree_leaf_dead_space_permille",
        "mean leaf dead-space ratio, in permille",
        static_cast<std::int64_t>(leaves.dead_space_ratio * 1000.0));
  }
}

}  // namespace tsss::index
