#include <algorithm>
#include <limits>

#include "tsss/index/rtree.h"

namespace tsss::index {

Result<TreeStats> RTree::ComputeStats() {
  TreeStats stats;
  stats.height = height_;
  stats.entry_count = size_;

  std::size_t leaf_entry_sum = 0;
  std::size_t internal_entry_sum = 0;
  std::size_t internal_count = 0;
  double aspect_sum = 0.0;
  double diag_sum = 0.0;
  std::size_t box_count = 0;

  const NodeCodec codec(config_.dim);
  Status s = VisitNodes([&](const Node& node, storage::PageId) {
    ++stats.node_count;
    const std::size_t per_page =
        node.is_leaf() ? codec.max_leaf_entries() : codec.max_internal_entries();
    stats.node_pages += std::max<std::size_t>(
        1, (node.entries.size() + per_page - 1) / per_page);
    if (!node.is_leaf() && node.entries.size() > config_.max_entries) {
      ++stats.supernode_count;
    }
    if (node.is_leaf()) {
      ++stats.leaf_count;
      leaf_entry_sum += node.entries.size();
      stats.total_leaf_mbr_volume += node.ComputeMbr(config_.dim).Volume();
    } else {
      ++internal_count;
      internal_entry_sum += node.entries.size();
      // Pairwise overlap among sibling MBRs: the quantity the X-tree paper
      // ties to search degradation and the paper cites in Section 7.
      for (std::size_t i = 0; i < node.entries.size(); ++i) {
        for (std::size_t j = i + 1; j < node.entries.size(); ++j) {
          stats.total_overlap_volume +=
              node.entries[i].mbr.OverlapVolume(node.entries[j].mbr);
        }
      }
      // Shape of child boxes: long-thin MBRs are why bounding spheres fail
      // (Section 7 discussion, SR-tree observation).
      for (const Entry& e : node.entries) {
        double shortest = std::numeric_limits<double>::infinity();
        double longest = 0.0;
        for (std::size_t d = 0; d < config_.dim; ++d) {
          const double side = e.mbr.hi()[d] - e.mbr.lo()[d];
          shortest = std::min(shortest, side);
          longest = std::max(longest, side);
        }
        if (shortest > 0.0) {
          aspect_sum += longest / shortest;
          diag_sum += 2.0 * e.mbr.HalfDiagonal() / shortest;
          ++box_count;
        }
      }
    }
  });
  if (!s.ok()) return s;

  if (stats.leaf_count > 0) {
    stats.avg_leaf_fill =
        static_cast<double>(leaf_entry_sum) /
        (static_cast<double>(stats.leaf_count) * static_cast<double>(leaf_max_));
  }
  if (internal_count > 0) {
    stats.avg_internal_fill = static_cast<double>(internal_entry_sum) /
                              (static_cast<double>(internal_count) *
                               static_cast<double>(config_.max_entries));
  }
  if (box_count > 0) {
    stats.avg_aspect_ratio = aspect_sum / static_cast<double>(box_count);
    stats.avg_diag_to_min_side = diag_sum / static_cast<double>(box_count);
  }
  return stats;
}

}  // namespace tsss::index
