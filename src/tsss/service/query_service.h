#ifndef TSSS_SERVICE_QUERY_SERVICE_H_
#define TSSS_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "tsss/common/mutex.h"
#include "tsss/common/status.h"
#include "tsss/common/thread_annotations.h"
#include "tsss/core/engine.h"
#include "tsss/core/similarity.h"
#include "tsss/geom/vec.h"
#include "tsss/obs/histogram.h"
#include "tsss/obs/rolling.h"
#include "tsss/obs/trace.h"

namespace tsss::service {

/// The histogram moved to the shared observability layer; the alias keeps
/// service-side call sites and tests on their established spelling.
using LatencyHistogram = obs::LatencyHistogram;

/// Which SearchEngine entry point a request drives.
enum class QueryKind {
  kRange,      ///< SearchEngine::RangeQuery (|query| == window)
  kKnn,        ///< SearchEngine::Knn
  kLongRange,  ///< SearchEngine::LongRangeQuery (|query| > window)
};

/// One query submitted to the service.
struct QueryRequest {
  QueryKind kind = QueryKind::kRange;
  geom::Vec query;  ///< raw values; length checked by the engine
  double eps = 0.0;   ///< range / long-range tolerance
  std::size_t k = 0;  ///< k-NN result count
  core::TransformCost cost;
  /// Per-request deadline measured from Submit(). Zero means "use the
  /// service default"; a negative value disables the deadline entirely.
  std::chrono::milliseconds timeout{0};
  /// Scatter-gather hook: when non-null the request runs against this
  /// engine instead of the service's default one. shard::ShardedEngine uses
  /// this to fan one logical query out across its shard engines through a
  /// single worker pool. The engine must outlive the request's future and,
  /// like the default engine, must have cold_cache_per_query off.
  const core::SearchEngine* target = nullptr;
  /// Optional shared k-NN termination bound, forwarded to SearchEngine::Knn
  /// so concurrent sub-queries over disjoint partitions tighten each other
  /// mid-flight. Ignored for non-kNN kinds. Must outlive the future.
  core::KnnSharedBound* knn_bound = nullptr;
  /// Test hook forwarded to ExecControl::set_check_budget: trips the query's
  /// deadline after this many polls regardless of the wall clock, so "slow
  /// query" outcomes (and their flight-recorder captures) are deterministic
  /// in tests. 0 (the default) disables it.
  std::uint64_t check_budget = 0;
};

/// The completed answer delivered through the future returned by Submit().
struct QueryResponse {
  Status status;  ///< OK, DeadlineExceeded, Cancelled, or an engine error
  std::vector<core::Match> matches;
  core::QueryStats stats;  ///< per-query page/candidate/pruning counters
  /// Wall time from Submit() to completion (queueing + execution).
  std::chrono::microseconds latency{0};
};

struct ServiceConfig {
  std::size_t num_workers = 4;
  /// Admission-queue bound: Submit() rejects with ResourceExhausted once
  /// this many requests are waiting (backpressure instead of unbounded
  /// memory growth).
  std::size_t queue_capacity = 128;
  /// Deadline applied to requests that leave timeout == 0. Zero disables
  /// the default deadline.
  std::chrono::milliseconds default_timeout{0};
  /// Rolling window every completion is recorded into (latency + outcome),
  /// behind the windowed quantiles in Stats() and the /healthz SLO state.
  /// nullptr (the default) makes the service own a default-configured one;
  /// inject to share a window across services or to drive a test clock.
  /// Must outlive the service.
  obs::RollingWindow* rolling_window = nullptr;
};

/// Point-in-time view of the service counters, returned by Stats().
struct ServiceMetrics {
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t served = 0;     ///< completed with an OK status
  std::uint64_t rejected = 0;   ///< refused at admission (queue full)
  std::uint64_t timed_out = 0;  ///< deadline expired (queued or mid-query)
  std::uint64_t cancelled = 0;  ///< unwound by RequestCancel
  std::uint64_t failed = 0;     ///< completed with any other error
  std::size_t queue_depth = 0;  ///< requests waiting right now
  /// Cumulative since service start — they never forget a burst. For live
  /// health use `last_minute` below (the /statusz "windowed" block).
  double p50_latency_ms = 0.0;  ///< median Submit()-to-completion latency
  double p99_latency_ms = 0.0;
  /// Buffer-pool hit rate over the engine's lifetime (0 when no reads yet).
  double pool_hit_rate = 0.0;
  /// Trailing-minute view from the service's rolling window.
  obs::RollingWindow::Snapshot last_minute;
};

/// Serves Chu-Wong scale-shift queries concurrently over one shared
/// SearchEngine.
///
/// A fixed pool of worker threads drains a bounded admission queue; Submit()
/// returns a std::future that resolves to the QueryResponse. Admission is
/// reject-on-full (ResourceExhausted) rather than blocking, so a saturated
/// service applies backpressure immediately. Each request carries an optional
/// deadline: requests that expire while still queued are failed without
/// touching the engine, and in-flight queries poll the deadline at R-tree
/// node granularity through ExecControl and unwind early.
///
/// The service only drives the engine's const read path, so any number of
/// workers may run concurrently. Create() turns off cold_cache_per_query
/// (a per-query pool Clear() is the single-threaded benchmark I/O model and
/// would evict pages out from under concurrent readers); it does not change
/// query results. Engine mutations must not run while a service is live.
///
/// Observability: each worker records completion latencies into its own
/// obs::LatencyHistogram (no cross-worker cache-line sharing on the hot
/// path); Stats() merges them on demand. Request outcomes and latency are
/// also reported to the process-wide obs::MetricsRegistry under
/// tsss_service_*. Completed queries feed per-kind cost attribution
/// (obs::RecordQueryCost), and when obs::FlightRecorder::Global() is armed
/// each request runs under a query trace so slow or failed completions are
/// captured with their trace, explain report, and cost.
///
/// Shutdown() (also run by the destructor) stops admission, drains every
/// queued request, and joins the workers; futures obtained before shutdown
/// always complete.
class QueryService {
 public:
  /// `engine` must outlive the service. The engine's cold-cache-per-query
  /// mode is switched off (see class comment).
  static Result<std::unique_ptr<QueryService>> Create(
      core::SearchEngine* engine, const ServiceConfig& config);

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one request. Fails with ResourceExhausted when the admission
  /// queue is full and FailedPrecondition after Shutdown().
  Result<std::future<QueryResponse>> Submit(QueryRequest request)
      TSSS_EXCLUDES(mu_);

  /// Enqueues all requests or none: when fewer than requests.size() queue
  /// slots are free the whole batch is rejected with ResourceExhausted.
  Result<std::vector<std::future<QueryResponse>>> SubmitBatch(
      std::vector<QueryRequest> requests) TSSS_EXCLUDES(mu_);

  ServiceMetrics Stats() const TSSS_EXCLUDES(mu_);

  /// The rolling window completions are recorded into: the injected one
  /// (ServiceConfig::rolling_window) or the service-owned default. Feed it
  /// to obs::EvaluateSlo for /healthz.
  obs::RollingWindow& rolling() const { return *rolling_; }

  /// Stops admission, drains the queue, and joins the workers. Idempotent.
  void Shutdown() TSSS_EXCLUDES(mu_);

  const ServiceConfig& config() const { return config_; }

 private:
  struct Task {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point submitted_at;
    /// Absolute deadline; time_point::max() when none.
    std::chrono::steady_clock::time_point deadline;
  };

  QueryService(core::SearchEngine* engine, const ServiceConfig& config);

  Task MakeTask(QueryRequest request) const;
  void WorkerLoop(std::size_t worker_index) TSSS_EXCLUDES(mu_);
  void Execute(Task task, std::size_t worker_index);
  Result<std::vector<core::Match>> RunQuery(const QueryRequest& request,
                                            core::QueryStats* stats) const;
  /// Records latency/outcome/cost metrics, feeds the flight recorder when it
  /// wants this completion, and resolves the promise. `trace` is the query's
  /// trace when one was installed (recorder armed), nullptr otherwise; it
  /// must already be fully closed (Execute ends the traced scope first).
  void FinishTask(Task* task, QueryResponse response, std::size_t worker_index,
                  const obs::QueryTrace* trace);

  const core::SearchEngine* engine_;
  const ServiceConfig config_;

  mutable Mutex mu_;
  CondVar cv_{&mu_};
  std::deque<Task> queue_ TSSS_GUARDED_BY(mu_);
  bool stopping_ TSSS_GUARDED_BY(mu_) = false;
  /// Written only by Create() (before any concurrent access exists) and
  /// joined by Shutdown(); workers never touch it, so it needs no guard.
  std::vector<std::thread> workers_;

  struct AtomicCounters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> timed_out{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> failed{0};
  };
  AtomicCounters counters_;
  /// One histogram per worker, sized by Create() before the threads start
  /// and merged by Stats(); indexing is wait-free and contention-free.
  std::vector<std::unique_ptr<obs::LatencyHistogram>> worker_latency_;
  /// Set when ServiceConfig::rolling_window is null; rolling_ points at
  /// this or at the injected window.
  std::unique_ptr<obs::RollingWindow> owned_rolling_;
  obs::RollingWindow* rolling_ = nullptr;
};

}  // namespace tsss::service

#endif  // TSSS_SERVICE_QUERY_SERVICE_H_
