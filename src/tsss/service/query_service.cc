#include "tsss/service/query_service.h"

#include <optional>
#include <string>
#include <utility>

#include "tsss/common/exec_control.h"
#include "tsss/obs/cost.h"
#include "tsss/obs/event_log.h"
#include "tsss/obs/explain.h"
#include "tsss/obs/flight_recorder.h"
#include "tsss/obs/metrics.h"

namespace tsss::service {

namespace {

constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

/// Stable label value for cost attribution and flight records.
const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRange:
      return "range";
    case QueryKind::kKnn:
      return "knn";
    case QueryKind::kLongRange:
      return "long_range";
  }
  return "unknown";
}

/// Process-wide service metrics in the registry, shared by every
/// QueryService instance. Resolved once.
struct ServiceRegistryMetrics {
  obs::Counter* submitted;
  obs::Counter* served;
  obs::Counter* rejected;
  obs::Counter* timed_out;
  obs::Counter* cancelled;
  obs::Counter* failed;
  obs::Gauge* queue_depth;
  obs::LatencyHistogram* latency;
};

const ServiceRegistryMetrics& RegistryMetrics() {
  static const ServiceRegistryMetrics metrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return ServiceRegistryMetrics{
        reg.GetCounter("tsss_service_submitted_total",
                       "Requests accepted into the admission queue"),
        reg.GetCounter("tsss_service_served_total",
                       "Requests completed with an OK status"),
        reg.GetCounter("tsss_service_rejected_total",
                       "Requests refused at admission (queue full)"),
        reg.GetCounter("tsss_service_timed_out_total",
                       "Requests whose deadline expired"),
        reg.GetCounter("tsss_service_cancelled_total", "Requests cancelled"),
        reg.GetCounter("tsss_service_failed_total",
                       "Requests completed with any other error"),
        reg.GetGauge("tsss_service_queue_depth",
                     "Requests waiting in the admission queue"),
        reg.GetHistogram("tsss_service_latency",
                         "Submit()-to-completion latency"),
    };
  }();
  return metrics;
}

}  // namespace

// --- QueryService -----------------------------------------------------------

QueryService::QueryService(core::SearchEngine* engine,
                           const ServiceConfig& config)
    : engine_(engine), config_(config) {
  if (config_.rolling_window != nullptr) {
    rolling_ = config_.rolling_window;
  } else {
    owned_rolling_ = std::make_unique<obs::RollingWindow>();
    rolling_ = owned_rolling_.get();
  }
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    core::SearchEngine* engine, const ServiceConfig& config) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (config.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (config.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  // The per-query pool Clear() of the cold-cache I/O model would evict pages
  // out from under concurrent readers; results are unaffected by caching.
  engine->set_cold_cache_per_query(false);

  auto service =
      std::unique_ptr<QueryService>(new QueryService(engine, config));
  service->worker_latency_.reserve(config.num_workers);
  for (std::size_t i = 0; i < config.num_workers; ++i) {
    service->worker_latency_.push_back(
        std::make_unique<obs::LatencyHistogram>());
  }
  service->workers_.reserve(config.num_workers);
  for (std::size_t i = 0; i < config.num_workers; ++i) {
    service->workers_.emplace_back(
        [raw = service.get(), i] { raw->WorkerLoop(i); });
  }
  return service;
}

QueryService::~QueryService() { Shutdown(); }

QueryService::Task QueryService::MakeTask(QueryRequest request) const {
  Task task;
  task.submitted_at = std::chrono::steady_clock::now();
  std::chrono::milliseconds timeout = request.timeout;
  if (timeout == std::chrono::milliseconds::zero()) {
    timeout = config_.default_timeout;
  }
  task.deadline = timeout > std::chrono::milliseconds::zero()
                      ? task.submitted_at + timeout
                      : kNoDeadline;
  task.request = std::move(request);
  return task;
}

Result<std::future<QueryResponse>> QueryService::Submit(QueryRequest request) {
  Task task = MakeTask(std::move(request));
  std::future<QueryResponse> future = task.promise.get_future();
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("service is shut down");
    }
    if (queue_.size() >= config_.queue_capacity) {
      // relaxed-ok: service stats counter; Stats() takes advisory reads
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      RegistryMetrics().rejected->Inc();
      obs::EventLog::Global().Publish(
          "service", "rejected",
          {{"queue_depth", queue_.size()},
           {"kind", static_cast<std::uint64_t>(task.request.kind)}});
      return Status::ResourceExhausted(
          "admission queue full (capacity " +
          std::to_string(config_.queue_capacity) + ")");
    }
    obs::EventLog::Global().Publish(
        "service", "admitted",
        {{"queue_depth", queue_.size() + 1},
         {"kind", static_cast<std::uint64_t>(task.request.kind)}});
    queue_.push_back(std::move(task));
    RegistryMetrics().queue_depth->Set(
        static_cast<std::int64_t>(queue_.size()));
  }
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
  RegistryMetrics().submitted->Inc();
  cv_.NotifyOne();
  return future;
}

Result<std::vector<std::future<QueryResponse>>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("service is shut down");
    }
    if (queue_.size() + requests.size() > config_.queue_capacity) {
      counters_.rejected.fetch_add(requests.size(),
                                   // relaxed-ok: service stats counter
                                   std::memory_order_relaxed);
      RegistryMetrics().rejected->Inc(requests.size());
      obs::EventLog::Global().Publish(
          "service", "batch_rejected",
          {{"batch", requests.size()}, {"queue_depth", queue_.size()}});
      return Status::ResourceExhausted(
          "batch of " + std::to_string(requests.size()) +
          " does not fit in the admission queue (" +
          std::to_string(config_.queue_capacity - queue_.size()) +
          " slots free)");
    }
    for (QueryRequest& request : requests) {
      Task task = MakeTask(std::move(request));
      futures.push_back(task.promise.get_future());
      queue_.push_back(std::move(task));
    }
    RegistryMetrics().queue_depth->Set(
        static_cast<std::int64_t>(queue_.size()));
    obs::EventLog::Global().Publish(
        "service", "batch_admitted",
        {{"batch", futures.size()}, {"queue_depth", queue_.size()}});
  }
  counters_.submitted.fetch_add(futures.size(), std::memory_order_relaxed);  // relaxed-ok: stat
  RegistryMetrics().submitted->Inc(futures.size());
  cv_.NotifyAll();
  return futures;
}

void QueryService::WorkerLoop(std::size_t worker_index) {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      // Manual spurious-wakeup loop (not a predicate overload) so the
      // guarded reads of stopping_/queue_ stay visible to the thread-safety
      // analysis; CondVar::Wait re-holds mu_ on return.
      while (!stopping_ && queue_.empty()) cv_.Wait();
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      RegistryMetrics().queue_depth->Set(
          static_cast<std::int64_t>(queue_.size()));
    }
    Execute(std::move(task), worker_index);
  }
}

Result<std::vector<core::Match>> QueryService::RunQuery(
    const QueryRequest& request, core::QueryStats* stats) const {
  const core::SearchEngine* engine =
      request.target != nullptr ? request.target : engine_;
  switch (request.kind) {
    case QueryKind::kRange:
      return engine->RangeQuery(request.query, request.eps, request.cost,
                                stats);
    case QueryKind::kKnn:
      return engine->Knn(request.query, request.k, request.cost, stats,
                         request.knn_bound);
    case QueryKind::kLongRange:
      return engine->LongRangeQuery(request.query, request.eps, request.cost,
                                    stats);
  }
  return Status::InvalidArgument("unknown query kind");
}

void QueryService::Execute(Task task, std::size_t worker_index) {
  QueryResponse response;
  // When the flight recorder is armed, run the query under a local trace so
  // a capture carries full span data. The traced scope (and the worker's
  // ExecControl) ends before FinishTask: every span is closed and an expired
  // deadline can no longer abort the explain assembly of the capture itself.
  obs::QueryTrace trace;
  bool traced = false;
  if (std::chrono::steady_clock::now() >= task.deadline) {
    // Expired while still queued: fail fast without touching the engine.
    obs::EventLog::Global().Publish("service", "deadline_expired_in_queue",
                                    {{"worker", worker_index}});
    response.status = Status::DeadlineExceeded("deadline expired in queue");
  } else {
    ExecControl control;
    if (task.deadline != kNoDeadline) control.set_deadline(task.deadline);
    if (task.request.check_budget != 0) {
      control.set_check_budget(task.request.check_budget);
    }
    ScopedExecControl scoped(&control);
    std::optional<obs::ScopedQueryTrace> scoped_trace;
    if (obs::FlightRecorder::Global().armed()) {
      scoped_trace.emplace(&trace);
      traced = true;
    }
    Result<std::vector<core::Match>> result =
        RunQuery(task.request, &response.stats);
    response.status = result.status();
    if (result.ok()) response.matches = std::move(result).value();
  }
  FinishTask(&task, std::move(response), worker_index,
             traced ? &trace : nullptr);
}

void QueryService::FinishTask(Task* task, QueryResponse response,
                              std::size_t worker_index,
                              const obs::QueryTrace* trace) {
  response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - task->submitted_at);
  worker_latency_[worker_index]->Record(response.latency);
  RegistryMetrics().latency->Record(response.latency);
  rolling_->Record(
      static_cast<std::uint64_t>(response.latency.count()),
      response.status.ok(),
      response.status.code() == StatusCode::kDeadlineExceeded);
  const char* outcome = "failed";
  // Outcome counters are advisory service stats; Stats() reads them with the
  // same relaxed ordering and promises no cross-counter consistency.
  switch (response.status.code()) {
    case StatusCode::kOk:
      counters_.served.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
      RegistryMetrics().served->Inc();
      outcome = "served";
      break;
    case StatusCode::kDeadlineExceeded:
      counters_.timed_out.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
      RegistryMetrics().timed_out->Inc();
      outcome = "timed_out";
      break;
    case StatusCode::kCancelled:
      counters_.cancelled.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
      RegistryMetrics().cancelled->Inc();
      outcome = "cancelled";
      break;
    default:
      counters_.failed.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat
      RegistryMetrics().failed->Inc();
      break;
  }
  obs::EventLog::Global().Publish(
      "service", outcome,
      {{"worker", worker_index},
       {"latency_us", static_cast<std::uint64_t>(response.latency.count())},
       {"matches", response.matches.size()}});

  const char* kind_name = KindName(task->request.kind);
  if (response.status.ok()) {
    // Cost attribution: the engine filled stats.cost for every query that
    // ran to completion; fold it into the per-kind labelled metrics. Error
    // paths unwind before the engine fills stats, so recording them would
    // only pollute the histograms with zeros.
    obs::RecordQueryCost("kind", kind_name, response.stats.cost);
  }

  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const std::uint64_t latency_us =
      static_cast<std::uint64_t>(response.latency.count());
  if (recorder.ShouldCapture(latency_us, response.status.ok())) {
    obs::FlightRecord record;
    record.kind = kind_name;
    record.outcome = outcome;
    record.latency_us = latency_us;
    record.cost = response.stats.cost;
    // Derive the explain report from this task's own stats — never from the
    // engine-wide last-query slot, which a concurrent worker may have
    // already overwritten.
    const core::SearchEngine* engine =
        task->request.target != nullptr ? task->request.target : engine_;
    Result<obs::ExplainReport> explain = engine->ExplainFromStats(
        kind_name, task->request.eps, task->request.k, latency_us,
        response.stats);
    if (explain.ok()) {
      record.explain = std::move(*explain);
      if (trace != nullptr) obs::FillExplainPhases(*trace, &record.explain);
      record.has_explain = true;
    }
    if (trace != nullptr) record.trace_json = trace->ToChromeJson();
    recorder.MaybeCapture(std::move(record));
  }

  task->promise.set_value(std::move(response));
}

ServiceMetrics QueryService::Stats() const {
  ServiceMetrics out;
  // relaxed-ok (block): advisory snapshot of independent stats counters
  out.submitted = counters_.submitted.load(std::memory_order_relaxed);  // relaxed-ok: stat
  out.served = counters_.served.load(std::memory_order_relaxed);        // relaxed-ok: stat
  out.rejected = counters_.rejected.load(std::memory_order_relaxed);    // relaxed-ok: stat
  out.timed_out = counters_.timed_out.load(std::memory_order_relaxed);  // relaxed-ok: stat
  out.cancelled = counters_.cancelled.load(std::memory_order_relaxed);  // relaxed-ok: stat
  out.failed = counters_.failed.load(std::memory_order_relaxed);        // relaxed-ok: stat
  {
    MutexLock lock(mu_);
    out.queue_depth = queue_.size();
  }
  obs::LatencyHistogram merged;
  for (const auto& hist : worker_latency_) merged.Merge(*hist);
  out.p50_latency_ms = merged.PercentileMs(0.50);
  out.p99_latency_ms = merged.PercentileMs(0.99);
  out.last_minute = rolling_->Window(60'000'000);
  const storage::BufferPoolMetrics pool = engine_->pool().metrics();
  const std::uint64_t reads = pool.hits + pool.misses;
  out.pool_hit_rate =
      reads == 0 ? 0.0
                 : static_cast<double>(pool.hits) / static_cast<double>(reads);
  return out;
}

void QueryService::Shutdown() {
  {
    MutexLock lock(mu_);
    if (!stopping_) {
      obs::EventLog::Global().Publish("service", "shutdown",
                                      {{"queue_depth", queue_.size()}});
    }
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace tsss::service
