#include "tsss/service/query_service.h"

#include <algorithm>
#include <bit>
#include <string>
#include <utility>

#include "tsss/common/exec_control.h"

namespace tsss::service {

namespace {

constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

}  // namespace

// --- LatencyHistogram -------------------------------------------------------

std::size_t LatencyHistogram::BucketFor(std::uint64_t us) {
  if (us < 16) return static_cast<std::size_t>(us);
  const unsigned log2 = static_cast<unsigned>(std::bit_width(us)) - 1u;
  const std::uint64_t frac = (us >> (log2 - 2u)) & 3u;
  const std::size_t index =
      16 + static_cast<std::size_t>(log2 - 4u) * 4 +
      static_cast<std::size_t>(frac);
  return std::min(index, kNumBuckets - 1);
}

std::uint64_t LatencyHistogram::BucketFloorUs(std::size_t index) {
  if (index < 16) return index;
  const std::size_t rest = index - 16;
  const unsigned octave = 4u + static_cast<unsigned>(rest / 4);
  const std::uint64_t frac = rest % 4;
  return (std::uint64_t{1} << octave) +
         frac * (std::uint64_t{1} << (octave - 2u));
}

void LatencyHistogram::Record(std::chrono::microseconds latency) {
  const std::uint64_t us =
      latency.count() < 0 ? 0 : static_cast<std::uint64_t>(latency.count());
  buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::PercentileMs(double q) const {
  std::array<std::uint64_t, kNumBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample (1-based, nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return static_cast<double>(BucketFloorUs(i)) / 1000.0;
    }
  }
  return static_cast<double>(BucketFloorUs(kNumBuckets - 1)) / 1000.0;
}

// --- QueryService -----------------------------------------------------------

QueryService::QueryService(core::SearchEngine* engine,
                           const ServiceConfig& config)
    : engine_(engine), config_(config) {}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    core::SearchEngine* engine, const ServiceConfig& config) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (config.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (config.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  // The per-query pool Clear() of the cold-cache I/O model would evict pages
  // out from under concurrent readers; results are unaffected by caching.
  engine->set_cold_cache_per_query(false);

  auto service =
      std::unique_ptr<QueryService>(new QueryService(engine, config));
  service->workers_.reserve(config.num_workers);
  for (std::size_t i = 0; i < config.num_workers; ++i) {
    service->workers_.emplace_back([raw = service.get()] { raw->WorkerLoop(); });
  }
  return service;
}

QueryService::~QueryService() { Shutdown(); }

QueryService::Task QueryService::MakeTask(QueryRequest request) const {
  Task task;
  task.submitted_at = std::chrono::steady_clock::now();
  std::chrono::milliseconds timeout = request.timeout;
  if (timeout == std::chrono::milliseconds::zero()) {
    timeout = config_.default_timeout;
  }
  task.deadline = timeout > std::chrono::milliseconds::zero()
                      ? task.submitted_at + timeout
                      : kNoDeadline;
  task.request = std::move(request);
  return task;
}

Result<std::future<QueryResponse>> QueryService::Submit(QueryRequest request) {
  Task task = MakeTask(std::move(request));
  std::future<QueryResponse> future = task.promise.get_future();
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("service is shut down");
    }
    if (queue_.size() >= config_.queue_capacity) {
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission queue full (capacity " +
          std::to_string(config_.queue_capacity) + ")");
    }
    queue_.push_back(std::move(task));
  }
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  cv_.NotifyOne();
  return future;
}

Result<std::vector<std::future<QueryResponse>>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("service is shut down");
    }
    if (queue_.size() + requests.size() > config_.queue_capacity) {
      counters_.rejected.fetch_add(requests.size(),
                                   std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "batch of " + std::to_string(requests.size()) +
          " does not fit in the admission queue (" +
          std::to_string(config_.queue_capacity - queue_.size()) +
          " slots free)");
    }
    for (QueryRequest& request : requests) {
      Task task = MakeTask(std::move(request));
      futures.push_back(task.promise.get_future());
      queue_.push_back(std::move(task));
    }
  }
  counters_.submitted.fetch_add(futures.size(), std::memory_order_relaxed);
  cv_.NotifyAll();
  return futures;
}

void QueryService::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      // Manual spurious-wakeup loop (not a predicate overload) so the
      // guarded reads of stopping_/queue_ stay visible to the thread-safety
      // analysis; CondVar::Wait re-holds mu_ on return.
      while (!stopping_ && queue_.empty()) cv_.Wait();
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Execute(std::move(task));
  }
}

Result<std::vector<core::Match>> QueryService::RunQuery(
    const QueryRequest& request, core::QueryStats* stats) const {
  switch (request.kind) {
    case QueryKind::kRange:
      return engine_->RangeQuery(request.query, request.eps, request.cost,
                                 stats);
    case QueryKind::kKnn:
      return engine_->Knn(request.query, request.k, request.cost, stats);
    case QueryKind::kLongRange:
      return engine_->LongRangeQuery(request.query, request.eps, request.cost,
                                     stats);
  }
  return Status::InvalidArgument("unknown query kind");
}

void QueryService::Execute(Task task) {
  QueryResponse response;
  if (std::chrono::steady_clock::now() >= task.deadline) {
    // Expired while still queued: fail fast without touching the engine.
    response.status = Status::DeadlineExceeded("deadline expired in queue");
  } else {
    ExecControl control;
    if (task.deadline != kNoDeadline) control.set_deadline(task.deadline);
    ScopedExecControl scoped(&control);
    Result<std::vector<core::Match>> result =
        RunQuery(task.request, &response.stats);
    response.status = result.status();
    if (result.ok()) response.matches = std::move(result).value();
  }
  FinishTask(&task, std::move(response));
}

void QueryService::FinishTask(Task* task, QueryResponse response) {
  response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - task->submitted_at);
  latency_.Record(response.latency);
  switch (response.status.code()) {
    case StatusCode::kOk:
      counters_.served.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kDeadlineExceeded:
      counters_.timed_out.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
      counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      counters_.failed.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  task->promise.set_value(std::move(response));
}

ServiceMetrics QueryService::Stats() const {
  ServiceMetrics out;
  out.submitted = counters_.submitted.load(std::memory_order_relaxed);
  out.served = counters_.served.load(std::memory_order_relaxed);
  out.rejected = counters_.rejected.load(std::memory_order_relaxed);
  out.timed_out = counters_.timed_out.load(std::memory_order_relaxed);
  out.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  out.failed = counters_.failed.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    out.queue_depth = queue_.size();
  }
  out.p50_latency_ms = latency_.PercentileMs(0.50);
  out.p99_latency_ms = latency_.PercentileMs(0.99);
  const storage::BufferPoolMetrics pool = engine_->pool().metrics();
  const std::uint64_t reads = pool.hits + pool.misses;
  out.pool_hit_rate =
      reads == 0 ? 0.0
                 : static_cast<double>(pool.hits) / static_cast<double>(reads);
  return out;
}

void QueryService::Shutdown() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace tsss::service
