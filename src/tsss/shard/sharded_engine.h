#ifndef TSSS_SHARD_SHARDED_ENGINE_H_
#define TSSS_SHARD_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/core/engine.h"
#include "tsss/core/similarity.h"
#include "tsss/obs/explain.h"
#include "tsss/seq/time_series.h"
#include "tsss/service/query_service.h"
#include "tsss/shard/shard_map.h"

namespace tsss::shard {

/// File name of the shard map inside a sharded index root. Its presence is
/// how tools tell a sharded root from a single-engine index directory.
inline constexpr char kShardMapFileName[] = "shard_map.tsss";

struct ShardedEngineConfig {
  /// Per-shard engine settings. `engine.storage_dir`, when non-empty, is the
  /// ROOT of the sharded index: shard i persists under
  /// <root>/shard-<i> and the shard map under <root>/shard_map.tsss.
  /// cold_cache_per_query is forced off (fan-out runs shards concurrently).
  core::EngineConfig engine;
  std::uint32_t num_shards = 4;
  ShardScheme scheme = ShardScheme::kHash;
  /// Worker threads in the internal fan-out pool; 0 = one per shard.
  std::size_t fanout_workers = 0;
};

/// Point-in-time per-shard view for inspection and benchmarks.
struct ShardInfo {
  std::uint32_t shard = 0;
  std::uint64_t series = 0;
  std::uint64_t indexed_windows = 0;
  std::size_t tree_height = 0;
  /// Buffer-pool hit rate over the shard engine's lifetime (0 if no reads).
  double pool_hit_rate = 0.0;
};

/// Scatter-gather facade over N independent core::SearchEngine shards — one
/// logical index with the single-engine query API (ROADMAP item 2).
///
/// Partitioning is per *series* (ShardMap): a series' windows all live in
/// one shard, each shard has its own R-tree, dataset and BufferPool (no
/// cross-shard cache contention), and each shard's pool reports under a
/// `shard="i"` metrics label. Queries fan out through one internal
/// service::QueryService worker pool via QueryRequest::target and merge:
///
///  * Range / long-range: per-shard answers are disjoint (verdicts are per
///    window, windows are partitioned); remap local series ids to global
///    and re-sort by record — bit-identical to the single-engine answer,
///    which is also (series, offset)-sorted.
///  * kNN: every shard runs a full local top-k under the canonical
///    (distance, record) order, sharing one core::KnnSharedBound so a shard
///    that already has k answers tightens every other shard's GEMINI
///    termination bound mid-flight; a k-way heap merge of the per-shard
///    lists then yields exactly the single-engine answer (any global top-k
///    member is necessarily in its own shard's local top-k).
///
/// The per-shard prune waterfalls sum into one ExplainLast() report whose
/// explain_accounted() identity still holds (the identity is linear).
///
/// Thread safety: the const query methods may run concurrently from many
/// threads (shard engines run their concurrent-read path, the fan-out pool
/// is internally synchronized, the shared bound is lock-free). Mutations
/// (BulkBuild, AddSeries, Append, Checkpoint) require exclusive access,
/// exactly like SearchEngine. ExplainLast() reads per-shard last-query
/// snapshots and must not race other queries.
class ShardedEngine {
 public:
  /// Builds an empty sharded engine (create-form). num_shards >= 1.
  static Result<std::unique_ptr<ShardedEngine>> Create(
      const ShardedEngineConfig& config);

  /// Reopens a sharded index persisted by Checkpoint() under `storage_dir`:
  /// loads <root>/shard_map.tsss, then opens every <root>/shard-<i>.
  static Result<std::unique_ptr<ShardedEngine>> Open(
      const std::string& storage_dir, std::size_t fanout_workers = 0);

  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Partitions the corpus by the configured scheme and bulk-loads every
  /// shard. Must be called on an empty engine. Series keep their corpus
  /// order as *global* ids 0..N-1; answers are reported in that id space.
  Status BulkBuild(const std::vector<seq::TimeSeries>& corpus);

  /// Adds one series to its shard (dynamic insertion); returns the global
  /// series id.
  Result<storage::SeriesId> AddSeries(std::string name,
                                      std::span<const double> values);

  /// Appends observations to a previously added series.
  Status Append(storage::SeriesId global, std::span<const double> values);

  /// Persists every shard (shard i under <root>/shard-<i>) plus the shard
  /// map. Requires a file-backed config (engine.storage_dir non-empty).
  Status Checkpoint();

  /// Fan-out counterparts of the SearchEngine query API. Answers and
  /// `stats` (summed across shards) are in the global id space; matches are
  /// bit-identical to a single engine indexing the same corpus.
  Result<std::vector<core::Match>> RangeQuery(
      std::span<const double> query, double eps,
      const core::TransformCost& cost = {},
      core::QueryStats* stats = nullptr) const;
  Result<std::vector<core::Match>> Knn(std::span<const double> query,
                                       std::size_t k,
                                       const core::TransformCost& cost = {},
                                       core::QueryStats* stats = nullptr) const;
  Result<std::vector<core::Match>> LongRangeQuery(
      std::span<const double> query, double eps,
      const core::TransformCost& cost = {},
      core::QueryStats* stats = nullptr) const;

  /// Merged plan report of the last completed query: per-shard reports
  /// folded with obs::MergeExplainReports (counters summed, so the prune
  /// waterfall identity still accounts for every tested entry).
  Result<obs::ExplainReport> ExplainLast() const;

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const ShardMap& shard_map() const { return map_; }
  const core::SearchEngine& shard(std::uint32_t i) const { return *shards_[i]; }
  const core::EngineConfig& engine_config() const { return config_.engine; }

  std::uint64_t total_series() const { return map_.series.size(); }
  std::uint64_t num_indexed_windows() const;

  /// Global-id directory (the sharded analogue of seq::Dataset lookups).
  Result<std::string> SeriesName(storage::SeriesId global) const;
  Result<std::span<const double>> SeriesValues(storage::SeriesId global) const;
  Result<storage::SeriesId> FindSeries(std::string_view name) const;

  /// Per-shard inspection rows (series/windows/height/pool hit rate).
  std::vector<ShardInfo> ShardInfos() const;

  /// Counters of the internal fan-out pool (sub-queries, not logical
  /// queries: one logical query submits num_shards() requests).
  service::ServiceMetrics FanoutStats() const;

  /// The fan-out pool's rolling window: every per-shard leg's latency and
  /// outcome, for windowed quantiles and /healthz SLO evaluation on a
  /// sharded server (same granularity caveat as FanoutStats()).
  obs::RollingWindow& rolling() const { return service_->rolling(); }

 private:
  ShardedEngine() = default;

  /// Builds the shard engines + fan-out service for `map_`/`config_`.
  /// `open_existing` selects SearchEngine::Open over Create.
  static Result<std::unique_ptr<ShardedEngine>> Assemble(
      ShardedEngineConfig config, ShardMap map, bool open_existing);

  std::string ShardDir(std::uint32_t i) const;

  /// Submits one sub-request per shard and gathers every response; retries
  /// admission when concurrent fan-outs momentarily fill the queue.
  Result<std::vector<service::QueryResponse>> FanOut(
      const std::vector<service::QueryRequest>& requests) const;

  /// Rewrites a shard-local answer into the global id space (in place).
  void RemapToGlobal(std::uint32_t from_shard,
                     std::vector<core::Match>* matches) const;

  ShardedEngineConfig config_;
  ShardMap map_;
  /// local_to_global_[shard][local_id] == global id (dense, build order).
  std::vector<std::vector<storage::SeriesId>> local_to_global_;
  std::vector<std::unique_ptr<core::SearchEngine>> shards_;
  /// Declared after shards_ so the worker pool is destroyed (joined) before
  /// the engines it queries.
  std::unique_ptr<service::QueryService> service_;
};

}  // namespace tsss::shard

#endif  // TSSS_SHARD_SHARDED_ENGINE_H_
