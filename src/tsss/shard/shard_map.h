#ifndef TSSS_SHARD_SHARD_MAP_H_
#define TSSS_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/storage/sequence_store.h"

namespace tsss::shard {

/// How global series ids are assigned to shards. Partitioning is at *series*
/// granularity: every window of a series lands in that series' shard, so a
/// long-range query (whose candidate pieces all come from one series) stays
/// shard-local and per-window verdicts merge trivially.
enum class ShardScheme : int {
  /// Fibonacci multiplicative hash of the global series id. Spreads any id
  /// pattern evenly; the default.
  kHash = 0,
  /// global_id % num_shards. Deterministic striping; useful in tests where
  /// the placement must be obvious.
  kRoundRobin = 1,
};

/// Where one global series lives: which shard, and under which series id
/// inside that shard's private SearchEngine (each shard numbers its own
/// series densely from 0).
struct ShardAssignment {
  std::uint32_t shard = 0;
  storage::SeriesId local_id = 0;
};

/// The versioned partition record of a sharded index: shard count, the
/// assignment scheme, and the global-series -> (shard, local id) table.
/// Persisted as `shard_map.tsss` next to the per-shard engine directories
/// and required to re-open the index — it is the only place the global id
/// space is recorded.
///
/// Locals are assigned in increasing global-id order, so within a shard
/// local order == global order. ShardedEngine relies on this: remapping a
/// shard's (distance, record)-sorted k-NN answer to global record ids
/// preserves its order.
struct ShardMap {
  std::uint32_t num_shards = 1;
  ShardScheme scheme = ShardScheme::kHash;
  /// Indexed by global storage::SeriesId.
  std::vector<ShardAssignment> series;

  /// Range-checked lookup; InvalidArgument for an unknown global id.
  Result<ShardAssignment> Assignment(storage::SeriesId global) const;

  /// Per-shard series counts (by scanning the table).
  std::vector<std::uint64_t> SeriesPerShard() const;
};

/// Upper bound on shards a map may declare; far above any deployment and
/// small enough that a hostile count cannot drive a large allocation.
inline constexpr std::uint32_t kMaxShards = 4096;
/// Upper bound on series rows a map may declare (bounds the table
/// allocation before it happens; ~512 MiB of raw doubles per series would
/// exhaust the container long before this).
inline constexpr std::uint64_t kMaxShardMapSeries = 1ull << 26;

/// Deterministic shard for a new global series id under `scheme`.
/// `num_shards` must be >= 1.
std::uint32_t AssignShard(ShardScheme scheme, storage::SeriesId global,
                          std::uint32_t num_shards);

/// Builds the map for globals 0..num_series-1 under `scheme`, assigning
/// shard-local ids densely in global order.
ShardMap BuildShardMap(ShardScheme scheme, std::uint64_t num_series,
                       std::uint32_t num_shards);

/// Text encoding (version line "tsss-shard-map-v1", then key/value and table
/// rows). Deterministic; round-trips through ParseShardMap.
std::string EncodeShardMap(const ShardMap& map);

/// Parses an encoded map from untrusted bytes. Every violation — bad
/// version, missing or non-numeric fields, out-of-range counts, rows out of
/// order, a shard id >= num_shards, local ids that are not dense per shard,
/// trailing garbage — returns Corruption (never UB, never an unbounded
/// allocation), per the fuzz-hardened parser conventions.
Result<ShardMap> ParseShardMap(std::istream& in);

/// File variants. Load returns NotFound when `path` does not exist and
/// Corruption for any malformed content.
Status SaveShardMap(const std::string& path, const ShardMap& map);
Result<ShardMap> LoadShardMap(const std::string& path);

}  // namespace tsss::shard

#endif  // TSSS_SHARD_SHARD_MAP_H_
