#include "tsss/shard/shard_map.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace tsss::shard {
namespace {

constexpr char kShardMapVersion[] = "tsss-shard-map-v1";

/// Strict digits-only uint64 parse for untrusted tokens. Rejects empty
/// tokens, signs, leading '+'/'-', non-digits and anything above `max`
/// (including values that overflow uint64 on the way). istream's built-in
/// `>>` into an unsigned silently accepts "-1" by wrapping; this does not.
Status ParseU64(const std::string& token, const char* key, std::uint64_t max,
                std::uint64_t* out) {
  if (token.empty() || token.size() > 20) {
    return Status::Corruption(std::string("shard map key '") + key +
                              "' has a malformed value");
  }
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::Corruption(std::string("shard map key '") + key +
                                "' has a non-numeric value");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::Corruption(std::string("shard map key '") + key +
                                "' overflows");
    }
    value = value * 10 + digit;
  }
  if (value > max) {
    return Status::Corruption(std::string("shard map key '") + key +
                              "' is out of range");
  }
  *out = value;
  return Status::OK();
}

/// Reads the next whitespace-separated token; Corruption when the stream is
/// exhausted (truncated input).
Status NextToken(std::istream& in, const char* key, std::string* token) {
  if (!(in >> *token)) {
    return Status::Corruption(std::string("shard map truncated before '") +
                              key + "'");
  }
  return Status::OK();
}

Status ExpectKeyword(std::istream& in, const char* keyword) {
  std::string token;
  Status s = NextToken(in, keyword, &token);
  if (!s.ok()) return s;
  if (token != keyword) {
    return Status::Corruption(std::string("shard map expected '") + keyword +
                              "', found '" + token + "'");
  }
  return Status::OK();
}

}  // namespace

Result<ShardAssignment> ShardMap::Assignment(storage::SeriesId global) const {
  if (global >= series.size()) {
    return Status::InvalidArgument("series id " + std::to_string(global) +
                                   " not in shard map (" +
                                   std::to_string(series.size()) + " series)");
  }
  return series[global];
}

std::vector<std::uint64_t> ShardMap::SeriesPerShard() const {
  std::vector<std::uint64_t> counts(num_shards, 0);
  for (const ShardAssignment& a : series) {
    if (a.shard < counts.size()) ++counts[a.shard];
  }
  return counts;
}

std::uint32_t AssignShard(ShardScheme scheme, storage::SeriesId global,
                          std::uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  switch (scheme) {
    case ShardScheme::kHash: {
      // Fibonacci multiplicative hash: the golden-ratio multiplier diffuses
      // consecutive ids across the high bits before the modulo.
      const std::uint64_t h =
          static_cast<std::uint64_t>(global) * 0x9E3779B97F4A7C15ull;
      return static_cast<std::uint32_t>((h >> 32) % num_shards);
    }
    case ShardScheme::kRoundRobin:
      return global % num_shards;
  }
  return 0;
}

ShardMap BuildShardMap(ShardScheme scheme, std::uint64_t num_series,
                       std::uint32_t num_shards) {
  ShardMap map;
  map.num_shards = num_shards == 0 ? 1 : num_shards;
  map.scheme = scheme;
  map.series.reserve(num_series);
  std::vector<storage::SeriesId> next_local(map.num_shards, 0);
  for (std::uint64_t g = 0; g < num_series; ++g) {
    ShardAssignment a;
    a.shard =
        AssignShard(scheme, static_cast<storage::SeriesId>(g), map.num_shards);
    a.local_id = next_local[a.shard]++;
    map.series.push_back(a);
  }
  return map;
}

std::string EncodeShardMap(const ShardMap& map) {
  std::ostringstream out;
  out << kShardMapVersion << "\n";
  out << "shards " << map.num_shards << "\n";
  out << "scheme " << static_cast<int>(map.scheme) << "\n";
  out << "series " << map.series.size() << "\n";
  for (std::size_t g = 0; g < map.series.size(); ++g) {
    out << g << " " << map.series[g].shard << " " << map.series[g].local_id
        << "\n";
  }
  return out.str();
}

Result<ShardMap> ParseShardMap(std::istream& in) {
  std::string version;
  if (!std::getline(in, version) || version != kShardMapVersion) {
    return Status::Corruption("unsupported shard map version '" + version +
                              "'");
  }

  ShardMap map;
  std::string token;
  std::uint64_t value = 0;

  Status s = ExpectKeyword(in, "shards");
  if (!s.ok()) return s;
  s = NextToken(in, "shards", &token);
  if (!s.ok()) return s;
  s = ParseU64(token, "shards", kMaxShards, &value);
  if (!s.ok()) return s;
  if (value == 0) return Status::Corruption("shard map declares zero shards");
  map.num_shards = static_cast<std::uint32_t>(value);

  s = ExpectKeyword(in, "scheme");
  if (!s.ok()) return s;
  s = NextToken(in, "scheme", &token);
  if (!s.ok()) return s;
  s = ParseU64(token, "scheme",
               static_cast<std::uint64_t>(ShardScheme::kRoundRobin), &value);
  if (!s.ok()) return s;
  map.scheme = static_cast<ShardScheme>(value);

  s = ExpectKeyword(in, "series");
  if (!s.ok()) return s;
  s = NextToken(in, "series", &token);
  if (!s.ok()) return s;
  std::uint64_t count = 0;
  s = ParseU64(token, "series", kMaxShardMapSeries, &count);
  if (!s.ok()) return s;

  // The count is bounded above, so this reserve cannot be driven into a
  // hostile allocation.
  map.series.reserve(static_cast<std::size_t>(count));
  std::vector<storage::SeriesId> next_local(map.num_shards, 0);
  for (std::uint64_t g = 0; g < count; ++g) {
    s = NextToken(in, "row global", &token);
    if (!s.ok()) return s;
    s = ParseU64(token, "row global", kMaxShardMapSeries, &value);
    if (!s.ok()) return s;
    if (value != g) {
      return Status::Corruption("shard map rows out of order: expected " +
                                std::to_string(g) + ", found " +
                                std::to_string(value));
    }
    ShardAssignment a;
    s = NextToken(in, "row shard", &token);
    if (!s.ok()) return s;
    s = ParseU64(token, "row shard", map.num_shards - 1, &value);
    if (!s.ok()) return s;
    a.shard = static_cast<std::uint32_t>(value);
    s = NextToken(in, "row local", &token);
    if (!s.ok()) return s;
    s = ParseU64(token, "row local", kMaxShardMapSeries, &value);
    if (!s.ok()) return s;
    a.local_id = static_cast<storage::SeriesId>(value);
    // Locals must be dense and in global order per shard — the invariant
    // the merge-order reasoning (see ShardMap) depends on.
    if (a.local_id != next_local[a.shard]) {
      return Status::Corruption(
          "shard map local ids not dense: shard " + std::to_string(a.shard) +
          " expected local " + std::to_string(next_local[a.shard]) +
          ", found " + std::to_string(a.local_id));
    }
    ++next_local[a.shard];
    map.series.push_back(a);
  }

  if (in >> token) {
    return Status::Corruption("shard map has trailing content '" + token +
                              "'");
  }
  return map;
}

Status SaveShardMap(const std::string& path, const ShardMap& map) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write shard map '" + path + "'");
  out << EncodeShardMap(map);
  out.flush();
  if (!out) return Status::IoError("short write to shard map '" + path + "'");
  return Status::OK();
}

Result<ShardMap> LoadShardMap(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return Status::NotFound("shard map '" + path + "' does not exist");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read shard map '" + path + "'");
  return ParseShardMap(in);
}

}  // namespace tsss::shard
