#include "tsss/shard/sharded_engine.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <queue>
#include <thread>
#include <utility>

#include "tsss/common/check.h"
#include "tsss/obs/cost.h"
#include "tsss/seq/window.h"

namespace tsss::shard {
namespace {

/// Folds one shard's per-query counters into the caller-visible total. Every
/// field is a sum — the same linearity MergeExplainReports relies on.
void AccumulateStats(const core::QueryStats& in, core::QueryStats* out) {
  out->index_page_reads += in.index_page_reads;
  out->index_page_misses += in.index_page_misses;
  out->data_page_reads += in.data_page_reads;
  out->candidates += in.candidates;
  out->matches += in.matches;

  out->penetration.tests += in.penetration.tests;
  out->penetration.visits += in.penetration.visits;
  out->penetration.outer_rejects += in.penetration.outer_rejects;
  out->penetration.inner_accepts += in.penetration.inner_accepts;
  out->penetration.slab_tests += in.penetration.slab_tests;
  out->penetration.sphere_tests += in.penetration.sphere_tests;
  out->penetration.exact_tests += in.penetration.exact_tests;

  obs::QueryTelemetry& t = out->telemetry;
  const obs::QueryTelemetry& s = in.telemetry;
  t.nodes_visited += s.nodes_visited;
  for (std::size_t i = 0; i < obs::QueryTelemetry::kMaxLevels; ++i) {
    t.nodes_per_level[i] += s.nodes_per_level[i];
  }
  t.mbr_distance_evals += s.mbr_distance_evals;
  t.leaf_candidates += s.leaf_candidates;
  t.ep_prunes += s.ep_prunes;
  t.bs_prunes += s.bs_prunes;
  t.exact_prunes += s.exact_prunes;
  t.entries_tested += s.entries_tested;
  t.candidates_postfiltered += s.candidates_postfiltered;

  out->cost += in.cost;
}

/// Per-shard cost rollup: every fan-out leg's spend lands in the
/// shard-labelled cost metrics, whether or not the caller asked for stats
/// and whether or not the overall query succeeds — the pages were read and
/// the CPU was burned either way.
void RecordShardCosts(const std::vector<service::QueryResponse>& responses) {
  for (std::size_t i = 0; i < responses.size(); ++i) {
    obs::RecordQueryCost("shard", std::to_string(i), responses[i].stats.cost);
  }
}

/// The canonical result order shared with SearchEngine: range answers by
/// record, k-NN answers by (distance, record).
bool RecordLess(const core::Match& a, const core::Match& b) {
  return a.record < b.record;
}
bool CanonicalLess(const core::Match& a, const core::Match& b) {
  return a.distance < b.distance ||
         (a.distance == b.distance && a.record < b.record);
}

}  // namespace

ShardedEngine::~ShardedEngine() = default;

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const ShardedEngineConfig& config) {
  if (config.num_shards == 0 || config.num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  ShardMap map;
  map.num_shards = config.num_shards;
  map.scheme = config.scheme;
  return Assemble(config, std::move(map), /*open_existing=*/false);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& storage_dir, std::size_t fanout_workers) {
  Result<ShardMap> map = LoadShardMap(storage_dir + "/" + kShardMapFileName);
  if (!map.ok()) return map.status();

  ShardedEngineConfig config;
  config.engine.storage_dir = storage_dir;
  config.num_shards = map->num_shards;
  config.scheme = map->scheme;
  config.fanout_workers = fanout_workers;
  return Assemble(std::move(config), std::move(*map), /*open_existing=*/true);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Assemble(
    ShardedEngineConfig config, ShardMap map, bool open_existing) {
  // The fan-out pool runs shards concurrently; a per-query pool Clear()
  // would evict pages out from under sibling sub-queries.
  config.engine.cold_cache_per_query = false;

  std::unique_ptr<ShardedEngine> sharded(new ShardedEngine());
  sharded->config_ = std::move(config);
  sharded->map_ = std::move(map);

  sharded->local_to_global_.assign(sharded->map_.num_shards, {});
  for (std::size_t g = 0; g < sharded->map_.series.size(); ++g) {
    const ShardAssignment& a = sharded->map_.series[g];
    std::vector<storage::SeriesId>& locals = sharded->local_to_global_[a.shard];
    if (a.local_id != locals.size()) {
      return Status::Corruption("shard map local ids not dense for shard " +
                                std::to_string(a.shard));
    }
    locals.push_back(static_cast<storage::SeriesId>(g));
  }

  sharded->shards_.reserve(sharded->map_.num_shards);
  for (std::uint32_t i = 0; i < sharded->map_.num_shards; ++i) {
    Result<std::unique_ptr<core::SearchEngine>> shard_engine =
        Status::Internal("unassembled shard");
    if (open_existing) {
      shard_engine = core::SearchEngine::Open(sharded->ShardDir(i));
      if (!shard_engine.ok()) return shard_engine.status();
      // The map is the source of truth for the id space; a shard whose
      // dataset disagrees was tampered with or mixed up across indexes.
      if ((*shard_engine)->dataset().size() !=
          sharded->local_to_global_[i].size()) {
        return Status::Corruption(
            "shard " + std::to_string(i) + " holds " +
            std::to_string((*shard_engine)->dataset().size()) +
            " series but the shard map assigns " +
            std::to_string(sharded->local_to_global_[i].size()));
      }
      (*shard_engine)->set_cold_cache_per_query(false);
      if (i == 0) {
        // Each shard persists its own engine.meta; adopt shard 0's config as
        // the facade's logical engine config (window, reducer, dims) so
        // engine_config() matches what the shards enforce. The storage_dir
        // stays the sharded root, not the shard subdirectory.
        const std::string root = sharded->config_.engine.storage_dir;
        sharded->config_.engine = (*shard_engine)->config();
        sharded->config_.engine.storage_dir = root;
        sharded->config_.engine.cold_cache_per_query = false;
      }
    } else {
      core::EngineConfig shard_config = sharded->config_.engine;
      if (!shard_config.storage_dir.empty()) {
        shard_config.storage_dir = sharded->ShardDir(i);
      }
      shard_engine = core::SearchEngine::Create(shard_config);
      if (!shard_engine.ok()) return shard_engine.status();
    }
    (*shard_engine)->pool().SetMetricsLabel("shard", std::to_string(i));
    sharded->shards_.push_back(std::move(*shard_engine));
  }

  service::ServiceConfig service_config;
  service_config.num_workers = sharded->config_.fanout_workers != 0
                                   ? sharded->config_.fanout_workers
                                   : sharded->shards_.size();
  // Room for several logical queries' worth of sub-requests; FanOut()
  // retries admission anyway, this just keeps the retry path cold.
  service_config.queue_capacity =
      std::max<std::size_t>(256, 8 * sharded->shards_.size());
  Result<std::unique_ptr<service::QueryService>> service =
      service::QueryService::Create(sharded->shards_.front().get(),
                                    service_config);
  if (!service.ok()) return service.status();
  sharded->service_ = std::move(*service);
  return sharded;
}

std::string ShardedEngine::ShardDir(std::uint32_t i) const {
  return config_.engine.storage_dir + "/shard-" + std::to_string(i);
}

Status ShardedEngine::BulkBuild(const std::vector<seq::TimeSeries>& corpus) {
  if (total_series() != 0) {
    return Status::FailedPrecondition("BulkBuild requires an empty engine");
  }
  map_ = BuildShardMap(config_.scheme, corpus.size(), num_shards());
  local_to_global_.assign(num_shards(), {});
  std::vector<std::vector<seq::TimeSeries>> per_shard(num_shards());
  for (std::size_t g = 0; g < corpus.size(); ++g) {
    const ShardAssignment& a = map_.series[g];
    local_to_global_[a.shard].push_back(static_cast<storage::SeriesId>(g));
    per_shard[a.shard].push_back(corpus[g]);
  }
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    Status s = shards_[i]->BulkBuild(per_shard[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<storage::SeriesId> ShardedEngine::AddSeries(
    std::string name, std::span<const double> values) {
  if (map_.series.size() > std::numeric_limits<storage::SeriesId>::max()) {
    return Status::ResourceExhausted("series id space exhausted");
  }
  const storage::SeriesId global =
      static_cast<storage::SeriesId>(map_.series.size());
  ShardAssignment a;
  a.shard = AssignShard(map_.scheme, global, map_.num_shards);
  a.local_id =
      static_cast<storage::SeriesId>(local_to_global_[a.shard].size());
  Result<storage::SeriesId> local =
      shards_[a.shard]->AddSeries(std::move(name), values);
  if (!local.ok()) return local.status();
  TSSS_DCHECK(*local == a.local_id);
  map_.series.push_back(a);
  local_to_global_[a.shard].push_back(global);
  return global;
}

Status ShardedEngine::Append(storage::SeriesId global,
                             std::span<const double> values) {
  Result<ShardAssignment> a = map_.Assignment(global);
  if (!a.ok()) return a.status();
  return shards_[a->shard]->Append(a->local_id, values);
}

Status ShardedEngine::Checkpoint() {
  if (config_.engine.storage_dir.empty()) {
    return Status::FailedPrecondition(
        "Checkpoint requires a file-backed sharded engine (storage_dir)");
  }
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    Status s = shards_[i]->Checkpoint();
    if (!s.ok()) return s;
  }
  return SaveShardMap(config_.engine.storage_dir + "/" + kShardMapFileName,
                      map_);
}

Result<std::vector<service::QueryResponse>> ShardedEngine::FanOut(
    const std::vector<service::QueryRequest>& requests) const {
  Result<std::vector<std::future<service::QueryResponse>>> futures =
      Status::Internal("unsubmitted");
  for (;;) {
    // SubmitBatch consumes its argument even on rejection, so each attempt
    // submits a fresh copy. All-or-nothing admission keeps one logical
    // query's sub-requests together in the queue.
    futures = service_->SubmitBatch(requests);
    if (futures.ok()) break;
    if (futures.status().code() != StatusCode::kResourceExhausted) {
      return futures.status();
    }
    // Concurrent fan-outs momentarily filled the queue; the workers drain
    // it continuously, so yield and retry rather than failing the query.
    std::this_thread::yield();
  }
  std::vector<service::QueryResponse> responses;
  responses.reserve(futures->size());
  for (std::future<service::QueryResponse>& f : *futures) {
    responses.push_back(f.get());
  }
  return responses;
}

void ShardedEngine::RemapToGlobal(std::uint32_t from_shard,
                                  std::vector<core::Match>* matches) const {
  const std::vector<storage::SeriesId>& locals = local_to_global_[from_shard];
  for (core::Match& m : *matches) {
    TSSS_DCHECK(m.series < locals.size());
    const storage::SeriesId global = locals[m.series];
    m.series = global;
    m.record = seq::MakeRecordId(global, m.offset);
  }
}

Result<std::vector<core::Match>> ShardedEngine::RangeQuery(
    std::span<const double> query, double eps, const core::TransformCost& cost,
    core::QueryStats* stats) const {
  std::vector<service::QueryRequest> requests(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    requests[i].kind = service::QueryKind::kRange;
    requests[i].query.assign(query.begin(), query.end());
    requests[i].eps = eps;
    requests[i].cost = cost;
    requests[i].target = shards_[i].get();
  }
  Result<std::vector<service::QueryResponse>> responses = FanOut(requests);
  if (!responses.ok()) return responses.status();
  RecordShardCosts(*responses);

  std::vector<core::Match> merged;
  for (std::size_t i = 0; i < responses->size(); ++i) {
    service::QueryResponse& response = (*responses)[i];
    if (!response.status.ok()) return response.status;
    RemapToGlobal(static_cast<std::uint32_t>(i), &response.matches);
    merged.insert(merged.end(), response.matches.begin(),
                  response.matches.end());
    if (stats != nullptr) AccumulateStats(response.stats, stats);
  }
  // Windows are partitioned, so the per-shard answers are disjoint; the
  // union re-sorted by record is exactly the single-engine answer.
  std::sort(merged.begin(), merged.end(), RecordLess);
  return merged;
}

Result<std::vector<core::Match>> ShardedEngine::Knn(
    std::span<const double> query, std::size_t k,
    const core::TransformCost& cost, core::QueryStats* stats) const {
  core::KnnSharedBound bound;
  std::vector<service::QueryRequest> requests(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    requests[i].kind = service::QueryKind::kKnn;
    requests[i].query.assign(query.begin(), query.end());
    requests[i].k = k;
    requests[i].cost = cost;
    requests[i].target = shards_[i].get();
    requests[i].knn_bound = &bound;
  }
  Result<std::vector<service::QueryResponse>> responses = FanOut(requests);
  if (!responses.ok()) return responses.status();
  RecordShardCosts(*responses);

  // Each shard returns its local top-k in canonical (distance, record)
  // order; any global top-k member is necessarily in its shard's local
  // top-k, so a k-way merge of the heads yields the global answer.
  std::vector<std::vector<core::Match>> lists(responses->size());
  for (std::size_t i = 0; i < responses->size(); ++i) {
    service::QueryResponse& response = (*responses)[i];
    if (!response.status.ok()) return response.status;
    RemapToGlobal(static_cast<std::uint32_t>(i), &response.matches);
    // Locals are assigned in global order, so the remap preserves the
    // canonical order; the sort is a cheap belt-and-braces guarantee.
    std::sort(response.matches.begin(), response.matches.end(),
              CanonicalLess);
    lists[i] = std::move(response.matches);
    if (stats != nullptr) AccumulateStats(response.stats, stats);
  }

  using Head = std::pair<std::size_t, std::size_t>;  // (list, position)
  auto head_greater = [&lists](const Head& a, const Head& b) {
    return CanonicalLess(lists[b.first][b.second], lists[a.first][a.second]);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_greater)> heads(
      head_greater);
  for (std::size_t i = 0; i < lists.size(); ++i) {
    if (!lists[i].empty()) heads.push({i, 0});
  }
  std::vector<core::Match> merged;
  merged.reserve(k);
  while (merged.size() < k && !heads.empty()) {
    const Head head = heads.top();
    heads.pop();
    merged.push_back(lists[head.first][head.second]);
    if (head.second + 1 < lists[head.first].size()) {
      heads.push({head.first, head.second + 1});
    }
  }
  return merged;
}

Result<std::vector<core::Match>> ShardedEngine::LongRangeQuery(
    std::span<const double> query, double eps, const core::TransformCost& cost,
    core::QueryStats* stats) const {
  std::vector<service::QueryRequest> requests(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    requests[i].kind = service::QueryKind::kLongRange;
    requests[i].query.assign(query.begin(), query.end());
    requests[i].eps = eps;
    requests[i].cost = cost;
    requests[i].target = shards_[i].get();
  }
  Result<std::vector<service::QueryResponse>> responses = FanOut(requests);
  if (!responses.ok()) return responses.status();
  RecordShardCosts(*responses);

  std::vector<core::Match> merged;
  for (std::size_t i = 0; i < responses->size(); ++i) {
    service::QueryResponse& response = (*responses)[i];
    if (!response.status.ok()) return response.status;
    RemapToGlobal(static_cast<std::uint32_t>(i), &response.matches);
    merged.insert(merged.end(), response.matches.begin(),
                  response.matches.end());
    if (stats != nullptr) AccumulateStats(response.stats, stats);
  }
  // A series lives wholly in one shard, so every candidate piece of a
  // long query is verified in the shard that owns the series; the
  // per-window verdicts are disjoint and merge like a range query.
  std::sort(merged.begin(), merged.end(), RecordLess);
  return merged;
}

Result<obs::ExplainReport> ShardedEngine::ExplainLast() const {
  std::vector<obs::ExplainReport> parts;
  parts.reserve(shards_.size());
  for (const std::unique_ptr<core::SearchEngine>& shard : shards_) {
    Result<obs::ExplainReport> part = shard->ExplainLast();
    if (!part.ok()) return part.status();
    parts.push_back(std::move(*part));
  }
  return obs::MergeExplainReports(parts);
}

std::uint64_t ShardedEngine::num_indexed_windows() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<core::SearchEngine>& shard : shards_) {
    total += shard->num_indexed_windows();
  }
  return total;
}

Result<std::string> ShardedEngine::SeriesName(storage::SeriesId global) const {
  Result<ShardAssignment> a = map_.Assignment(global);
  if (!a.ok()) return a.status();
  return shards_[a->shard]->dataset().Name(a->local_id);
}

Result<std::span<const double>> ShardedEngine::SeriesValues(
    storage::SeriesId global) const {
  Result<ShardAssignment> a = map_.Assignment(global);
  if (!a.ok()) return a.status();
  return shards_[a->shard]->dataset().Values(a->local_id);
}

Result<storage::SeriesId> ShardedEngine::FindSeries(
    std::string_view name) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Result<storage::SeriesId> local = shards_[i]->dataset().FindSeries(name);
    if (local.ok()) return local_to_global_[i][*local];
  }
  return Status::NotFound("series '" + std::string(name) +
                          "' not found in any shard");
}

std::vector<ShardInfo> ShardedEngine::ShardInfos() const {
  std::vector<ShardInfo> infos;
  infos.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardInfo info;
    info.shard = static_cast<std::uint32_t>(i);
    info.series = local_to_global_[i].size();
    info.indexed_windows = shards_[i]->num_indexed_windows();
    info.tree_height = shards_[i]->tree().height();
    const storage::BufferPoolMetrics m = shards_[i]->pool().metrics();
    info.pool_hit_rate =
        m.logical_reads == 0
            ? 0.0
            : static_cast<double>(m.hits) /
                  static_cast<double>(m.logical_reads);
    infos.push_back(info);
  }
  return infos;
}

service::ServiceMetrics ShardedEngine::FanoutStats() const {
  return service_->Stats();
}

}  // namespace tsss::shard
