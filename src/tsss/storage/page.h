#ifndef TSSS_STORAGE_PAGE_H_
#define TSSS_STORAGE_PAGE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tsss::storage {

/// Fixed page size used throughout the system. Matches the paper's
/// experimental setting ("The page size is 4KBytes and each page stores one
/// internal node only").
inline constexpr std::size_t kPageSize = 4096;

/// Identifier of a page within a PageStore.
using PageId = std::uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// A raw 4 KiB page.
struct Page {
  std::array<std::uint8_t, kPageSize> bytes{};
};

/// Access counters shared by the storage components. "Logical" counts every
/// request; "physical" counts requests that had to go to the (simulated)
/// disk, i.e. buffer-pool misses.
struct PageAccessMetrics {
  std::uint64_t logical_reads = 0;
  std::uint64_t physical_reads = 0;
  std::uint64_t logical_writes = 0;
  std::uint64_t physical_writes = 0;

  void Reset() { *this = PageAccessMetrics{}; }
};

/// Internally-atomic variant the stores maintain so that concurrent readers
/// (the query service's worker pool) can count accesses without a data race.
/// Observers take a plain PageAccessMetrics snapshot. Counters use relaxed
/// ordering: they are statistics, not synchronization.
struct AtomicPageAccessMetrics {
  std::atomic<std::uint64_t> logical_reads{0};
  std::atomic<std::uint64_t> physical_reads{0};
  std::atomic<std::uint64_t> logical_writes{0};
  std::atomic<std::uint64_t> physical_writes{0};

  PageAccessMetrics Snapshot() const {
    PageAccessMetrics out;
    // Each line: relaxed-ok — independent statistics counters; the snapshot
    // is advisory and promises no cross-counter consistency.
    out.logical_reads = logical_reads.load(std::memory_order_relaxed);    // relaxed-ok: stat
    out.physical_reads = physical_reads.load(std::memory_order_relaxed);  // relaxed-ok: stat
    out.logical_writes = logical_writes.load(std::memory_order_relaxed);  // relaxed-ok: stat
    out.physical_writes = physical_writes.load(std::memory_order_relaxed);  // relaxed-ok: stat
    return out;
  }

  void Reset() {
    logical_reads.store(0, std::memory_order_relaxed);    // relaxed-ok: stat
    physical_reads.store(0, std::memory_order_relaxed);   // relaxed-ok: stat
    logical_writes.store(0, std::memory_order_relaxed);   // relaxed-ok: stat
    physical_writes.store(0, std::memory_order_relaxed);  // relaxed-ok: stat
  }
};

}  // namespace tsss::storage

#endif  // TSSS_STORAGE_PAGE_H_
