#ifndef TSSS_STORAGE_SEQUENCE_STORE_H_
#define TSSS_STORAGE_SEQUENCE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tsss/common/mutex.h"
#include "tsss/common/status.h"
#include "tsss/common/thread_annotations.h"
#include "tsss/storage/page.h"

namespace tsss::storage {

/// Identifier of a stored time series.
using SeriesId = std::uint32_t;

/// Page-aware storage for raw time-series values.
///
/// Values of all series are packed densely, 512 doubles per 4 KiB page, in
/// insertion order - the same model the paper uses to size the sequential
/// scan at (0.65M values x 8 bytes) / 4 KiB ~= 1300 pages. Reads issued
/// through ReadWindow() count the pages they touch; a sequential scan is
/// accounted with RecordFullScan() (every occupied page read exactly once).
///
/// Thread-safety: the read path (ReadWindow/ReadWindowDeduped/SeriesLength/
/// SeriesValues/RecordFullScan) is const and safe to call from any number of
/// threads concurrently - access counters are atomic, values are only read.
/// AddSeries/AppendToSeries mutate the value heap; they serialize against
/// each other on an internal writer mutex, but NOT against readers, so the
/// single-writer-vs-readers contract still applies: no read may be in
/// flight while a mutation runs (DESIGN.md §8). The value vectors are
/// intentionally not TSSS_GUARDED_BY(write_mu_): the lock-free const read
/// path could not compile under that annotation, and pretending otherwise
/// (NO_THREAD_SAFETY_ANALYSIS on every reader) would hide real races rather
/// than document the external contract.
class SequenceStore {
 public:
  SequenceStore() = default;

  SequenceStore(const SequenceStore&) = delete;
  SequenceStore& operator=(const SequenceStore&) = delete;

  /// Number of doubles per 4 KiB page.
  static constexpr std::size_t kValuesPerPage = kPageSize / sizeof(double);

  /// Appends a series; returns its id. Empty series are allowed.
  SeriesId AddSeries(std::span<const double> values) TSSS_EXCLUDES(write_mu_);

  /// Appends `values` to the end of an existing series (time-series data are
  /// collected regularly; requirement 2 of the paper's Section 3).
  /// Only the *last* inserted series can grow in the dense-packing model;
  /// appending to earlier series returns FailedPrecondition.
  Status AppendToSeries(SeriesId id, std::span<const double> values)
      TSSS_EXCLUDES(write_mu_);

  std::size_t num_series() const { return offsets_.size(); }

  /// Length (in values) of the series.
  Result<std::size_t> SeriesLength(SeriesId id) const;

  /// Uncounted direct view of a whole series - used when building the index
  /// (pre-processing is not part of the per-query cost model).
  Result<std::span<const double>> SeriesValues(SeriesId id) const;

  /// Copies values [offset, offset + out.size()) of the series into `out`,
  /// counting every touched page as one logical read.
  Status ReadWindow(SeriesId id, std::size_t offset, std::span<double> out) const;

  /// Like ReadWindow, but counts each page at most once across a sequence of
  /// calls with ascending (series, offset): pages <= *last_counted_page are
  /// not re-counted. Initialise *last_counted_page to kNoPageCounted before
  /// the first call of a batch. Models a query that verifies its candidates
  /// in storage order, touching every needed data page exactly once.
  static constexpr std::size_t kNoPageCounted = static_cast<std::size_t>(-1);
  Status ReadWindowDeduped(SeriesId id, std::size_t offset, std::span<double> out,
                           std::size_t* last_counted_page) const;

  /// Total pages occupied by all values.
  std::size_t TotalPages() const;

  /// Accounts a full sequential scan: every occupied page read once.
  void RecordFullScan() const;

  PageAccessMetrics metrics() const { return metrics_.Snapshot(); }
  void ResetMetrics() { metrics_.Reset(); }

  /// Total number of stored values across all series.
  std::size_t total_values() const { return values_.size(); }

 private:
  /// Serializes AddSeries/AppendToSeries against each other (see the class
  /// comment for why the vectors below carry no GUARDED_BY).
  Mutex write_mu_;
  std::vector<double> values_;        ///< densely packed value heap
  std::vector<std::size_t> offsets_;  ///< start of each series in values_
  std::vector<std::size_t> lengths_;  ///< length of each series
  /// mutable + atomic: counting is observability, not logical mutation, and
  /// must work from the const concurrent read path.
  mutable AtomicPageAccessMetrics metrics_;
};

}  // namespace tsss::storage

#endif  // TSSS_STORAGE_SEQUENCE_STORE_H_
