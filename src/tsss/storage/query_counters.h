#ifndef TSSS_STORAGE_QUERY_COUNTERS_H_
#define TSSS_STORAGE_QUERY_COUNTERS_H_

#include <cstdint>

namespace tsss::storage {

/// Per-query page-access counters.
///
/// The engine-wide metrics (BufferPoolMetrics, PageAccessMetrics) are shared
/// by every thread, so "counter delta across my query" stops identifying a
/// single query's cost the moment two queries run concurrently. Instead,
/// each query owns one of these on its stack and installs it for the
/// duration of the call with ScopedQueryCounters; the buffer pool and the
/// sequence store tick the installed counters alongside the global ones.
/// Thread-local installation means concurrent queries never share a counter,
/// and single-threaded counts are bit-identical to the old delta scheme.
struct QueryCounters {
  std::uint64_t pool_logical_reads = 0;  ///< BufferPool Fetch/New calls
  std::uint64_t pool_misses = 0;         ///< of those, buffer-pool misses
  std::uint64_t data_page_reads = 0;     ///< SequenceStore data pages touched
};

/// The counters of the query executing on this thread, or nullptr.
QueryCounters* CurrentQueryCounters();

/// Installs `counters` as this thread's per-query counters for its lifetime,
/// restoring the previous installation on destruction (scopes nest).
class ScopedQueryCounters {
 public:
  explicit ScopedQueryCounters(QueryCounters* counters);
  ~ScopedQueryCounters();

  ScopedQueryCounters(const ScopedQueryCounters&) = delete;
  ScopedQueryCounters& operator=(const ScopedQueryCounters&) = delete;

 private:
  QueryCounters* prev_;
};

}  // namespace tsss::storage

#endif  // TSSS_STORAGE_QUERY_COUNTERS_H_
