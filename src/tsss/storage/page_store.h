#ifndef TSSS_STORAGE_PAGE_STORE_H_
#define TSSS_STORAGE_PAGE_STORE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "tsss/common/status.h"
#include "tsss/storage/page.h"

namespace tsss::storage {

/// Abstract page volume: a flat, growable array of 4 KiB pages with
/// allocate/free/read/write. Every Read/Write counts as one physical page
/// access - the unit the paper's Figure 5 reports.
///
/// Implementations: MemPageStore (simulated disk in RAM, the default) and
/// FilePageStore (a real file with per-page checksums).
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Allocates a zeroed page and returns its id. Freed pages are recycled.
  virtual PageId Allocate() = 0;

  /// Returns a page to the free list. Double frees are detected.
  virtual Status Free(PageId id) = 0;

  /// Copies the page contents into `out`. Counts one physical read.
  virtual Status Read(PageId id, Page* out) = 0;

  /// Overwrites the page. Counts one physical write.
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Number of live (allocated, not freed) pages.
  virtual std::size_t num_live_pages() const = 0;

  /// Total pages ever allocated (high-water mark of the volume).
  virtual std::size_t capacity_pages() const = 0;

  PageAccessMetrics metrics() const { return metrics_.Snapshot(); }
  void ResetMetrics() { metrics_.Reset(); }

 protected:
  /// Atomic so concurrent readers (buffer-pool shards serving the query
  /// service) can count without racing; see AtomicPageAccessMetrics.
  AtomicPageAccessMetrics metrics_;
};

/// In-memory page store simulating a disk volume. The store is RAM-backed;
/// the I/O *model* (page granularity, access counting), not the medium, is
/// what the experiments depend on.
///
/// Thread-safety: Read/Write on *distinct live pages* may run concurrently
/// (access counters are atomic; page payloads are disjoint). Allocate/Free
/// mutate the volume shape and require exclusive access — the same
/// single-writer contract the buffer pool and engine expose (see DESIGN.md
/// §8, "Thread-safety contract").
class MemPageStore final : public PageStore {
 public:
  MemPageStore() = default;

  MemPageStore(const MemPageStore&) = delete;
  MemPageStore& operator=(const MemPageStore&) = delete;

  PageId Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  std::size_t num_live_pages() const override { return live_count_; }
  std::size_t capacity_pages() const override { return pages_.size(); }

 private:
  Status CheckLive(PageId id) const;

  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  std::size_t live_count_ = 0;
};

}  // namespace tsss::storage

#endif  // TSSS_STORAGE_PAGE_STORE_H_
