#include "tsss/storage/file_page_store.h"

#include <cstring>

#include "tsss/common/crc32.h"
#include "tsss/obs/metrics.h"

namespace tsss::storage {
namespace {

constexpr std::uint64_t kMetaMagic = 0x5453535350414745ull;  // "TSSSPAGE"

template <typename T>
void PutScalar(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetScalar(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

FilePageStore::FilePageStore(std::string path) : path_(std::move(path)) {}

FilePageStore::~FilePageStore() {
  // A destructor cannot propagate, but a failed final Sync means the
  // metadata on disk is stale — count it where an operator can see it.
  Status s = Sync();
  if (!s.ok()) {
    obs::MetricsRegistry::Global()
        .GetCounter("tsss_store_dtor_sync_failures_total",
                    "Sync failures during FilePageStore destruction (on-disk "
                    "metadata left stale)")
        ->Inc();
  }
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path) {
  auto store = std::unique_ptr<FilePageStore>(new FilePageStore(path));
  {
    MutexLock lock(store->mu_);
    // Truncate/create the data file.
    store->file_.open(path, std::ios::binary | std::ios::in | std::ios::out |
                                std::ios::trunc);
    if (!store->file_) {
      return Status::IoError("cannot create page file '" + path + "'");
    }
  }
  Status s = store->Sync();
  if (!s.ok()) return s;
  return store;
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  auto store = std::unique_ptr<FilePageStore>(new FilePageStore(path));
  MutexLock lock(store->mu_);
  store->file_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!store->file_) {
    return Status::IoError("cannot open page file '" + path + "'");
  }

  std::ifstream meta(store->MetaPath(), std::ios::binary);
  if (!meta) {
    return Status::IoError("cannot open metadata file '" + store->MetaPath() +
                           "'");
  }
  // The declared capacity is untrusted input: validate it against the actual
  // metadata file size BEFORE sizing any allocation by it, so a corrupt
  // header cannot demand a multi-gigabyte resize (each page contributes
  // exactly kMetaBytesPerPage bytes to the body).
  meta.seekg(0, std::ios::end);
  const auto meta_size = static_cast<std::uint64_t>(meta.tellg());
  meta.seekg(0, std::ios::beg);
  constexpr std::uint64_t kMetaHeaderBytes = 3 * sizeof(std::uint64_t);
  constexpr std::uint64_t kMetaBytesPerPage =
      sizeof(std::uint8_t) + sizeof(std::uint32_t);
  std::uint64_t magic = 0;
  std::uint64_t capacity = 0;
  std::uint64_t live_count = 0;
  if (!GetScalar(meta, &magic) || magic != kMetaMagic) {
    return Status::Corruption("bad metadata magic in '" + store->MetaPath() + "'");
  }
  if (!GetScalar(meta, &capacity) || !GetScalar(meta, &live_count)) {
    return Status::Corruption("truncated metadata header");
  }
  if (meta_size < kMetaHeaderBytes ||
      capacity > (meta_size - kMetaHeaderBytes) / kMetaBytesPerPage) {
    return Status::Corruption(
        "metadata declares " + std::to_string(capacity) +
        " pages but the file only holds " +
        std::to_string((meta_size - kMetaHeaderBytes) / kMetaBytesPerPage));
  }
  if (capacity > static_cast<std::uint64_t>(kInvalidPageId)) {
    return Status::Corruption("metadata capacity " + std::to_string(capacity) +
                              " exceeds the page-id space");
  }
  if (live_count > capacity) {
    return Status::Corruption("metadata live count " +
                              std::to_string(live_count) +
                              " exceeds capacity " + std::to_string(capacity));
  }
  store->live_.resize(capacity);
  store->crc_.resize(capacity);
  std::uint64_t live_recount = 0;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    std::uint8_t alive = 0;
    std::uint32_t crc = 0;
    if (!GetScalar(meta, &alive) || !GetScalar(meta, &crc)) {
      return Status::Corruption("truncated metadata body");
    }
    store->live_[i] = alive != 0;
    store->crc_[i] = crc;
    if (alive == 0) {
      store->free_list_.push_back(static_cast<PageId>(i));
    } else {
      ++live_recount;
    }
  }
  if (live_recount != live_count) {
    return Status::Corruption(
        "metadata live count " + std::to_string(live_count) +
        " does not match the " + std::to_string(live_recount) +
        " pages marked live");
  }
  store->live_count_ = live_count;

  // Sanity: the data file must hold `capacity` pages (capacity is bounded by
  // the metadata size check above, so the product cannot overflow).
  store->file_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(store->file_.tellg());
  if (file_size < capacity * kPageSize) {
    return Status::Corruption("page file shorter than metadata capacity");
  }
  return store;
}

Status FilePageStore::CheckLive(PageId id) const {
  if (id >= live_.size() || !live_[id]) {
    return Status::NotFound("page " + std::to_string(id) + " is not live");
  }
  return Status::OK();
}

PageId FilePageStore::Allocate() {
  MutexLock lock(mu_);
  PageId id;
  const Page zero{};
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    live_[id] = true;
  } else {
    id = static_cast<PageId>(live_.size());
    live_.push_back(true);
    crc_.push_back(0);
  }
  // Zero-fill on disk so recycled/extended pages read back deterministically.
  file_.seekp(static_cast<std::streamoff>(id) * kPageSize);
  file_.write(reinterpret_cast<const char*>(zero.bytes.data()), kPageSize);
  crc_[id] = Crc32(zero.bytes.data(), kPageSize);
  ++live_count_;
  return id;
}

Status FilePageStore::Free(PageId id) {
  MutexLock lock(mu_);
  Status s = CheckLive(id);
  if (!s.ok()) return s;
  live_[id] = false;
  free_list_.push_back(id);
  --live_count_;
  return Status::OK();
}

Status FilePageStore::Read(PageId id, Page* out) {
  MutexLock lock(mu_);
  Status s = CheckLive(id);
  if (!s.ok()) return s;
  ++metrics_.physical_reads;
  file_.seekg(static_cast<std::streamoff>(id) * kPageSize);
  file_.read(reinterpret_cast<char*>(out->bytes.data()), kPageSize);
  if (!file_) {
    file_.clear();
    return Status::IoError("short read on page " + std::to_string(id));
  }
  const std::uint32_t crc = Crc32(out->bytes.data(), kPageSize);
  if (crc != crc_[id]) {
    return Status::Corruption("checksum mismatch on page " + std::to_string(id));
  }
  return Status::OK();
}

Status FilePageStore::Write(PageId id, const Page& page) {
  MutexLock lock(mu_);
  Status s = CheckLive(id);
  if (!s.ok()) return s;
  ++metrics_.physical_writes;
  file_.seekp(static_cast<std::streamoff>(id) * kPageSize);
  file_.write(reinterpret_cast<const char*>(page.bytes.data()), kPageSize);
  if (!file_) {
    file_.clear();
    return Status::IoError("short write on page " + std::to_string(id));
  }
  crc_[id] = Crc32(page.bytes.data(), kPageSize);
  return Status::OK();
}

Status FilePageStore::Sync() {
  MutexLock lock(mu_);
  return SyncLocked();
}

Status FilePageStore::SyncLocked() {
  if (!file_.is_open()) return Status::OK();
  file_.flush();
  if (!file_) {
    file_.clear();
    return Status::IoError("flush of '" + path_ + "' failed");
  }
  std::ofstream meta(MetaPath(), std::ios::binary | std::ios::trunc);
  if (!meta) {
    return Status::IoError("cannot write metadata file '" + MetaPath() + "'");
  }
  PutScalar<std::uint64_t>(meta, kMetaMagic);
  PutScalar<std::uint64_t>(meta, live_.size());
  PutScalar<std::uint64_t>(meta, live_count_);
  for (std::size_t i = 0; i < live_.size(); ++i) {
    PutScalar<std::uint8_t>(meta, live_[i] ? 1 : 0);
    PutScalar<std::uint32_t>(meta, crc_[i]);
  }
  meta.flush();
  if (!meta) return Status::IoError("metadata write failed");
  return Status::OK();
}

}  // namespace tsss::storage
