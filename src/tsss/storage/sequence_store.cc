#include "tsss/storage/sequence_store.h"

#include <algorithm>
#include <string>

#include "tsss/obs/metrics.h"
#include "tsss/storage/query_counters.h"

namespace tsss::storage {

namespace {
/// Ticks the per-query data-read counter of the calling thread (if any) and
/// the process-wide registry counter.
void CountQueryDataReads(std::uint64_t pages) {
  if (QueryCounters* qc = CurrentQueryCounters()) {
    qc->data_page_reads += pages;
  }
  static obs::Counter* const data_page_reads =
      obs::MetricsRegistry::Global().GetCounter(
          "tsss_data_page_reads_total",
          "Raw-data pages read for candidate verification");
  data_page_reads->Inc(pages);
}
}  // namespace

SeriesId SequenceStore::AddSeries(std::span<const double> values) {
  MutexLock lock(write_mu_);
  const SeriesId id = static_cast<SeriesId>(offsets_.size());
  offsets_.push_back(values_.size());
  lengths_.push_back(values.size());
  values_.insert(values_.end(), values.begin(), values.end());
  return id;
}

Status SequenceStore::AppendToSeries(SeriesId id, std::span<const double> values) {
  MutexLock lock(write_mu_);
  if (id >= offsets_.size()) {
    return Status::NotFound("series " + std::to_string(id) + " does not exist");
  }
  if (id + 1 != offsets_.size()) {
    return Status::FailedPrecondition(
        "dense packing: only the most recently added series can grow");
  }
  lengths_[id] += values.size();
  values_.insert(values_.end(), values.begin(), values.end());
  return Status::OK();
}

Result<std::size_t> SequenceStore::SeriesLength(SeriesId id) const {
  if (id >= offsets_.size()) {
    return Status::NotFound("series " + std::to_string(id) + " does not exist");
  }
  return lengths_[id];
}

Result<std::span<const double>> SequenceStore::SeriesValues(SeriesId id) const {
  if (id >= offsets_.size()) {
    return Status::NotFound("series " + std::to_string(id) + " does not exist");
  }
  return std::span<const double>(values_.data() + offsets_[id], lengths_[id]);
}

Status SequenceStore::ReadWindowDeduped(SeriesId id, std::size_t offset,
                                        std::span<double> out,
                                        std::size_t* last_counted_page) const {
  if (id >= offsets_.size()) {
    return Status::NotFound("series " + std::to_string(id) + " does not exist");
  }
  if (offset + out.size() > lengths_[id]) {
    return Status::OutOfRange("window exceeds series length");
  }
  if (out.empty()) return Status::OK();
  const std::size_t global = offsets_[id] + offset;
  const std::size_t first_page = global / kValuesPerPage;
  const std::size_t last_page = (global + out.size() - 1) / kValuesPerPage;
  std::size_t first_new = first_page;
  if (*last_counted_page != kNoPageCounted && *last_counted_page >= first_page) {
    first_new = *last_counted_page + 1;
  }
  if (first_new <= last_page) {
    const std::size_t fresh = last_page - first_new + 1;
    metrics_.logical_reads += fresh;
    metrics_.physical_reads += fresh;
    CountQueryDataReads(fresh);
    *last_counted_page = last_page;
  }
  std::copy_n(values_.begin() + static_cast<std::ptrdiff_t>(global), out.size(),
              out.begin());
  return Status::OK();
}

Status SequenceStore::ReadWindow(SeriesId id, std::size_t offset,
                                 std::span<double> out) const {
  if (id >= offsets_.size()) {
    return Status::NotFound("series " + std::to_string(id) + " does not exist");
  }
  if (offset + out.size() > lengths_[id]) {
    return Status::OutOfRange("window [" + std::to_string(offset) + ", " +
                              std::to_string(offset + out.size()) +
                              ") exceeds series length " +
                              std::to_string(lengths_[id]));
  }
  const std::size_t global = offsets_[id] + offset;
  if (!out.empty()) {
    const std::size_t first_page = global / kValuesPerPage;
    const std::size_t last_page = (global + out.size() - 1) / kValuesPerPage;
    metrics_.logical_reads += last_page - first_page + 1;
    metrics_.physical_reads += last_page - first_page + 1;
    CountQueryDataReads(last_page - first_page + 1);
    std::copy_n(values_.begin() + static_cast<std::ptrdiff_t>(global), out.size(),
                out.begin());
  }
  return Status::OK();
}

std::size_t SequenceStore::TotalPages() const {
  return (values_.size() + kValuesPerPage - 1) / kValuesPerPage;
}

void SequenceStore::RecordFullScan() const {
  const std::size_t pages = TotalPages();
  metrics_.logical_reads += pages;
  metrics_.physical_reads += pages;
  CountQueryDataReads(pages);
}

}  // namespace tsss::storage
