#ifndef TSSS_STORAGE_FILE_PAGE_STORE_H_
#define TSSS_STORAGE_FILE_PAGE_STORE_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "tsss/common/mutex.h"
#include "tsss/common/status.h"
#include "tsss/common/thread_annotations.h"
#include "tsss/storage/page_store.h"

namespace tsss::storage {

/// File-backed page store: page i lives at byte offset i * 4096 of `path`,
/// and a sidecar file `path + ".meta"` records the allocation state plus a
/// CRC-32 per page, verified on every read.
///
/// Durability model: Sync() persists the metadata and flushes the data file;
/// the destructor calls it best-effort. Crash atomicity (journaling) is out
/// of scope - this store exists to persist built indexes and to keep the I/O
/// path honest, not to be a transactional engine.
///
/// Thread-safety: fully internally synchronized. The single std::fstream
/// cursor forces every operation through one mutex, so concurrent access is
/// safe but serialized; the buffer-pool shards in front of the store provide
/// the read concurrency (see DESIGN.md §8).
class FilePageStore final : public PageStore {
 public:
  /// Creates a fresh (truncated) volume.
  static Result<std::unique_ptr<FilePageStore>> Create(const std::string& path);

  /// Opens an existing volume created by Create()/Sync().
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  PageId Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  std::size_t num_live_pages() const override {
    MutexLock lock(mu_);
    return live_count_;
  }
  std::size_t capacity_pages() const override {
    MutexLock lock(mu_);
    return live_.size();
  }

  /// Persists metadata (allocation state + checksums) and flushes the data
  /// file.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  explicit FilePageStore(std::string path);

  Status CheckLive(PageId id) const TSSS_REQUIRES(mu_);
  std::string MetaPath() const { return path_ + ".meta"; }
  /// Sync body.
  Status SyncLocked() TSSS_REQUIRES(mu_);

  std::string path_;
  /// Guards the file cursor and all allocation metadata below.
  mutable Mutex mu_;
  std::fstream file_ TSSS_GUARDED_BY(mu_);
  std::vector<bool> live_ TSSS_GUARDED_BY(mu_);
  std::vector<std::uint32_t> crc_ TSSS_GUARDED_BY(mu_);
  std::vector<PageId> free_list_ TSSS_GUARDED_BY(mu_);
  std::size_t live_count_ TSSS_GUARDED_BY(mu_) = 0;
};

}  // namespace tsss::storage

#endif  // TSSS_STORAGE_FILE_PAGE_STORE_H_
