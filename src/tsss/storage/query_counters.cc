#include "tsss/storage/query_counters.h"

namespace tsss::storage {

namespace {
thread_local QueryCounters* g_current_query_counters = nullptr;
}  // namespace

QueryCounters* CurrentQueryCounters() { return g_current_query_counters; }

ScopedQueryCounters::ScopedQueryCounters(QueryCounters* counters)
    : prev_(g_current_query_counters) {
  g_current_query_counters = counters;
}

ScopedQueryCounters::~ScopedQueryCounters() {
  g_current_query_counters = prev_;
}

}  // namespace tsss::storage
