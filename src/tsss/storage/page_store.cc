#include "tsss/storage/page_store.h"

#include <string>

namespace tsss::storage {

PageId MemPageStore::Allocate() {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    *pages_[id] = Page{};  // zero-fill recycled pages
    live_[id] = true;
  } else {
    id = static_cast<PageId>(pages_.size());
    pages_.push_back(std::make_unique<Page>());
    live_.push_back(true);
  }
  ++live_count_;
  return id;
}

Status MemPageStore::CheckLive(PageId id) const {
  if (id >= pages_.size() || !live_[id]) {
    return Status::NotFound("page " + std::to_string(id) + " is not live");
  }
  return Status::OK();
}

Status MemPageStore::Free(PageId id) {
  Status s = CheckLive(id);
  if (!s.ok()) return s;
  live_[id] = false;
  free_list_.push_back(id);
  --live_count_;
  return Status::OK();
}

Status MemPageStore::Read(PageId id, Page* out) {
  Status s = CheckLive(id);
  if (!s.ok()) return s;
  ++metrics_.physical_reads;
  *out = *pages_[id];
  return Status::OK();
}

Status MemPageStore::Write(PageId id, const Page& page) {
  Status s = CheckLive(id);
  if (!s.ok()) return s;
  ++metrics_.physical_writes;
  *pages_[id] = page;
  return Status::OK();
}

}  // namespace tsss::storage
