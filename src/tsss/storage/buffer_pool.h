#ifndef TSSS_STORAGE_BUFFER_POOL_H_
#define TSSS_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>

#include "tsss/common/status.h"
#include "tsss/storage/page.h"
#include "tsss/storage/page_store.h"

namespace tsss::storage {

class BufferPool;

/// RAII pin on a buffered page. While a guard is alive the frame cannot be
/// evicted and its data pointer stays valid. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const;

  /// Read-only view of the page bytes.
  const Page& page() const;

  /// Mutable view; automatically marks the frame dirty.
  Page& MutablePage();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  struct Frame;
  PageGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
};

/// Counters specific to the buffer pool (in addition to the PageStore's
/// physical counters).
struct BufferPoolMetrics {
  std::uint64_t logical_reads = 0;  ///< Fetch/New calls (what Figure 5 counts)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t overflows = 0;  ///< times the pool exceeded soft capacity

  void Reset() { *this = BufferPoolMetrics{}; }
};

/// LRU write-back buffer pool over a PageStore.
///
/// Single-threaded by design (the whole library is; see README). The
/// capacity is soft: if every frame is pinned the pool grows past capacity
/// rather than failing mid-operation, and counts the overflow.
class BufferPool {
 public:
  /// `store` must outlive the pool. capacity_pages >= 1.
  BufferPool(PageStore* store, std::size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches an existing page, pinning it.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a brand-new zeroed page and pins it (already dirty).
  Result<PageGuard> New();

  /// Drops the page from the pool (must be unpinned) and frees it in the
  /// store. Dirty contents are discarded - the page is gone.
  Status Delete(PageId id);

  /// Writes all dirty frames back to the store (frames stay cached).
  Status FlushAll();

  /// Writes back and forgets every unpinned frame. Used by benchmarks to
  /// simulate a cold cache between queries.
  Status Clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return table_.size(); }

  const BufferPoolMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_.Reset(); }

  PageStore* store() { return store_; }

 private:
  friend class PageGuard;
  using Frame = PageGuard::Frame;

  /// Evicts LRU unpinned frames until size() <= capacity. Best effort.
  Status EvictIfNeeded();
  Status WriteBack(Frame* frame);
  void Unpin(Frame* frame);
  void TouchLru(Frame* frame);

  PageStore* store_;
  std::size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> table_;
  std::list<PageId> lru_;  ///< front = most recently used
  BufferPoolMetrics metrics_;
};

}  // namespace tsss::storage

#endif  // TSSS_STORAGE_BUFFER_POOL_H_
