#ifndef TSSS_STORAGE_BUFFER_POOL_H_
#define TSSS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tsss/common/check.h"
#include "tsss/common/mutex.h"
#include "tsss/common/status.h"
#include "tsss/common/thread_annotations.h"
#include "tsss/storage/page.h"
#include "tsss/storage/page_store.h"

namespace tsss::obs {
class Counter;  // labelled per-instance registry counters (SetMetricsLabel)
}  // namespace tsss::obs

namespace tsss::storage {

class BufferPool;

/// RAII pin on a buffered page. While a guard is alive the frame cannot be
/// evicted and its data pointer stays valid. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const;

  /// Read-only view of the page bytes.
  const Page& page() const;

  /// Mutable view; automatically marks the frame dirty.
  Page& MutablePage();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  struct Frame;
  PageGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
};

/// Counters specific to the buffer pool (in addition to the PageStore's
/// physical counters).
struct BufferPoolMetrics {
  std::uint64_t logical_reads = 0;  ///< Fetch/New calls (what Figure 5 counts)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t overflows = 0;  ///< times the pool exceeded soft capacity
  /// Clean frames whose bytes changed between load and final unpin - a stray
  /// write through a stale pointer. Any non-zero value fails AuditPins().
  std::uint64_t crc_failures = 0;

  void Reset() { *this = BufferPoolMetrics{}; }
};

/// Per-page tally collected while the access profile is enabled; the raw
/// material of the `tsss_cli inspect` heatmap (pages bucketed by tree level).
struct PageAccessStats {
  PageId page = kInvalidPageId;
  std::uint64_t accesses = 0;   ///< Fetch calls for this page (hits + misses)
  std::uint64_t misses = 0;     ///< of those, store reads
  std::uint64_t evictions = 0;  ///< times the page was evicted while profiled
};

/// LRU write-back buffer pool over a PageStore.
///
/// Thread-safety (DESIGN.md §8): the pool is internally synchronized for
/// concurrent readers. The frame table is sharded by page-id hash; each
/// shard owns its own mutex, frame map and LRU list, so Fetch/Unpin from
/// different threads contend only when they touch the same shard. Pin counts
/// are atomic and a pinned frame is never evicted, so the bytes behind a
/// live PageGuard stay valid and unchanging without further locking.
/// Mutations that change the *set* of pages (New/Delete) are shard-locked
/// too, but the volume-shape single-writer contract of the underlying store
/// still applies: do not run them concurrently with anything else.
///
/// Small pools (capacity < kShardingMinCapacity, e.g. every unit-test pool)
/// use a single shard and therefore keep the exact global-LRU eviction order
/// of the classic single-threaded pool; large pools trade strict global LRU
/// for per-shard LRU, the standard concurrency/recency compromise.
///
/// The capacity is soft: if every frame of a shard is pinned the shard grows
/// past its slice of the capacity rather than failing mid-operation, and
/// counts the overflow.
///
/// Correctness tooling (DESIGN.md, "Verification & static analysis"):
///  * Each frame remembers the CRC-32 of its bytes as loaded/written-back;
///    when the last pin on a *clean* frame drops, the CRC is re-verified, so
///    code that scribbles on a page without calling MutablePage() (or after
///    releasing its guard) is caught at the unpin boundary instead of
///    corrupting query answers. Enabled when debug checking is on (or
///    explicitly via the constructor); costs one CRC over 4 KiB per unpin.
///  * AuditPins() validates the pool's whole bookkeeping state; tests call
///    it after every operation.
class BufferPool {
 public:
  /// Pools at least this large shard their frame table for concurrency;
  /// smaller pools stay single-sharded (exact global LRU).
  static constexpr std::size_t kShardingMinCapacity = 64;
  /// Shard count used by pools past the threshold (power of two).
  static constexpr std::size_t kNumShards = 16;

  /// `store` must outlive the pool. capacity_pages >= 1. `verify_clean_crc`
  /// enables the unpin-time CRC re-verification described above; it defaults
  /// to on exactly when TSSS_DCHECK is on.
  BufferPool(PageStore* store, std::size_t capacity_pages,
             bool verify_clean_crc = TSSS_DCHECK_IS_ON != 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches an existing page, pinning it. Safe to call concurrently.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a brand-new zeroed page and pins it (already dirty).
  /// Volume-shape mutation: requires exclusive access to the pool.
  Result<PageGuard> New();

  /// Drops the page from the pool (must be unpinned) and frees it in the
  /// store. Dirty contents are discarded - the page is gone.
  /// Volume-shape mutation: requires exclusive access to the pool.
  Status Delete(PageId id);

  /// Writes all dirty frames back to the store (frames stay cached).
  Status FlushAll();

  /// Writes back and forgets every unpinned frame. Used by benchmarks to
  /// simulate a cold cache between queries.
  Status Clear();

  /// Deep structural audit of the pool's bookkeeping. Verifies that
  ///  * no frame is still pinned (a pin held across an operation boundary is
  ///    a leak - guards are meant to be scoped),
  ///  * each shard's LRU list and frame table describe the same set of pages,
  ///  * the maintained dirty-frame count matches a recount,
  ///  * no clean-frame CRC verification has ever failed.
  /// Returns the first violation as a Corruption/FailedPrecondition status.
  /// Meant to run at a quiescent point (no in-flight queries).
  Status AuditPins() const;

  /// Number of frames currently pinned at least once.
  std::size_t pinned_frames() const;

  /// Number of dirty (not yet written back) frames.
  std::size_t dirty_frames() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  /// Snapshot of the pool counters (atomics read relaxed; exact at any
  /// quiescent point, momentarily approximate under concurrency).
  BufferPoolMetrics metrics() const;
  void ResetMetrics();

  /// Registers labelled per-instance mirrors of the read-path counters
  /// (tsss_pool_{logical_reads,hits,misses,evictions}_total{key="value"}) in
  /// the process-wide obs::MetricsRegistry and bumps them alongside the
  /// unlabelled process totals. shard::ShardedEngine labels each shard's
  /// pool so per-shard hit rates are visible in one exporter scrape. Call
  /// during single-threaded setup, before any concurrent use of the pool.
  void SetMetricsLabel(const std::string& key, const std::string& value);

  /// Turns the per-page access profile on or off. Enabling clears any prior
  /// tally; disabling keeps it readable via AccessProfile(). While off (the
  /// default) the cost on Fetch is one relaxed atomic load.
  void EnableAccessProfile(bool enabled);
  bool access_profile_enabled() const {
    // relaxed-ok: advisory on/off flag; readers need no ordering
    return profile_enabled_.load(std::memory_order_relaxed);
  }

  /// The tally collected since the profile was last enabled, sorted by
  /// descending access count (ties broken by ascending page id).
  std::vector<PageAccessStats> AccessProfile() const;

  PageStore* store() { return store_; }

 private:
  friend class PageGuard;
  using Frame = PageGuard::Frame;

  /// One lock domain of the frame table. All fields are guarded by `mu`
  /// (checked by Clang Thread Safety Analysis). The Frame objects owned by
  /// `table` are part of the same lock domain: every non-atomic Frame field
  /// is read and written only under the owning shard's mu (pin_count is the
  /// atomic exception so PageGuard assertions and audits can read it
  /// lock-free); that per-owner relationship is not expressible as a
  /// GUARDED_BY attribute, so it is enforced by keeping all Frame access
  /// inside the TSSS_REQUIRES(shard.mu) helpers below.
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<PageId, std::unique_ptr<Frame>> table TSSS_GUARDED_BY(mu);
    std::list<PageId> lru TSSS_GUARDED_BY(mu);  ///< front = most recently used
    std::size_t dirty TSSS_GUARDED_BY(mu) = 0;  ///< dirty frames in this shard
    /// Per-page access tally; written only while profile_enabled_.
    std::unordered_map<PageId, PageAccessStats> profile TSSS_GUARDED_BY(mu);
  };

  /// Internally-atomic counters behind metrics().
  struct AtomicMetrics {
    std::atomic<std::uint64_t> logical_reads{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> writebacks{0};
    std::atomic<std::uint64_t> overflows{0};
    std::atomic<std::uint64_t> crc_failures{0};
  };

  Shard& ShardFor(PageId id) const {
    // Multiplicative (Fibonacci) hash: page ids are sequential, so taking
    // low bits directly would sweep scans through the shards in lock-step.
    const std::uint64_t h = static_cast<std::uint64_t>(id) * 2654435761ull;
    return shards_[(h >> shard_shift_) & (num_shards_ - 1)];
  }

  /// Evicts LRU unpinned frames until the shard fits its capacity slice.
  /// Best effort.
  Status EvictIfNeeded(Shard& shard) TSSS_REQUIRES(shard.mu);
  Status WriteBack(Shard& shard, Frame* frame) TSSS_REQUIRES(shard.mu);
  /// Records one Fetch for `id` in the shard's profile (if enabled).
  void ProfileAccess(Shard& shard, PageId id, bool miss)
      TSSS_REQUIRES(shard.mu);
  void MarkDirty(Frame* frame);
  void Unpin(Frame* frame);
  static void TouchLru(Shard& shard, Frame* frame) TSSS_REQUIRES(shard.mu);

  PageStore* store_;
  std::size_t capacity_;
  bool verify_clean_crc_;
  std::size_t num_shards_;
  std::uint32_t shard_shift_;     ///< hash >> shift yields the shard index
  std::size_t shard_capacity_;    ///< per-shard slice of capacity_
  std::unique_ptr<Shard[]> shards_;
  AtomicMetrics metrics_;
  std::atomic<bool> profile_enabled_{false};

  /// Labelled per-instance registry counters; null until SetMetricsLabel().
  /// Written once during setup, then read lock-free on the hot path.
  obs::Counter* labeled_logical_reads_ = nullptr;
  obs::Counter* labeled_hits_ = nullptr;
  obs::Counter* labeled_misses_ = nullptr;
  obs::Counter* labeled_evictions_ = nullptr;
};

}  // namespace tsss::storage

#endif  // TSSS_STORAGE_BUFFER_POOL_H_
