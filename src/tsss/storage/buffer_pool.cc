#include "tsss/storage/buffer_pool.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "tsss/common/check.h"
#include "tsss/common/crc32.h"

namespace tsss::storage {

struct PageGuard::Frame {
  PageId id = kInvalidPageId;
  Page page;
  bool dirty = false;
  int pin_count = 0;
  /// CRC-32 of `page` as last loaded from / written back to the store.
  /// Only meaningful when `crc_valid`; used to detect stray writes to clean
  /// frames (see BufferPool class comment).
  std::uint32_t clean_crc = 0;
  bool crc_valid = false;
  std::list<PageId>::iterator lru_pos;
};

namespace {
std::uint32_t PageCrc(const Page& page) {
  return Crc32(page.bytes.data(), page.bytes.size());
}
}  // namespace

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

PageId PageGuard::id() const {
  TSSS_DCHECK(valid());
  return frame_->id;
}

const Page& PageGuard::page() const {
  TSSS_DCHECK(valid());
  return frame_->page;
}

Page& PageGuard::MutablePage() {
  TSSS_DCHECK(valid());
  pool_->MarkDirty(frame_);
  return frame_->page;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = nullptr;
  }
}

BufferPool::BufferPool(PageStore* store, std::size_t capacity_pages,
                       bool verify_clean_crc)
    : store_(store),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      verify_clean_crc_(verify_clean_crc) {}

BufferPool::~BufferPool() {
  // Best-effort flush; errors here indicate the store died first, which the
  // single-threaded usage contract forbids.
  (void)FlushAll();
}

void BufferPool::TouchLru(Frame* frame) {
  lru_.erase(frame->lru_pos);
  lru_.push_front(frame->id);
  frame->lru_pos = lru_.begin();
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  ++metrics_.logical_reads;
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++metrics_.hits;
    Frame* frame = it->second.get();
    TouchLru(frame);
    ++frame->pin_count;
    return PageGuard(this, frame);
  }
  ++metrics_.misses;
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  Status s = store_->Read(id, &frame->page);
  if (!s.ok()) return s;
  if (verify_clean_crc_) {
    frame->clean_crc = PageCrc(frame->page);
    frame->crc_valid = true;
  }
  lru_.push_front(id);
  frame->lru_pos = lru_.begin();
  frame->pin_count = 1;
  Frame* raw = frame.get();
  table_.emplace(id, std::move(frame));
  s = EvictIfNeeded();
  if (!s.ok()) return s;
  return PageGuard(this, raw);
}

Result<PageGuard> BufferPool::New() {
  ++metrics_.logical_reads;
  const PageId id = store_->Allocate();
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  frame->dirty = true;
  ++dirty_count_;
  lru_.push_front(id);
  frame->lru_pos = lru_.begin();
  frame->pin_count = 1;
  Frame* raw = frame.get();
  table_.emplace(id, std::move(frame));
  Status s = EvictIfNeeded();
  if (!s.ok()) return s;
  return PageGuard(this, raw);
}

Status BufferPool::Delete(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame* frame = it->second.get();
    if (frame->pin_count > 0) {
      return Status::FailedPrecondition("deleting pinned page " +
                                        std::to_string(id));
    }
    if (frame->dirty) {
      TSSS_DCHECK(dirty_count_ > 0);
      --dirty_count_;
    }
    lru_.erase(frame->lru_pos);
    table_.erase(it);
  }
  return store_->Free(id);
}

void BufferPool::MarkDirty(Frame* frame) {
  if (!frame->dirty) {
    frame->dirty = true;
    ++dirty_count_;
    // The bytes are about to diverge from the stored copy; the clean CRC is
    // refreshed on the next write-back.
    frame->crc_valid = false;
  }
}

Status BufferPool::WriteBack(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  Status s = store_->Write(frame->id, frame->page);
  if (!s.ok()) return s;
  frame->dirty = false;
  TSSS_DCHECK(dirty_count_ > 0);
  --dirty_count_;
  if (verify_clean_crc_) {
    frame->clean_crc = PageCrc(frame->page);
    frame->crc_valid = true;
  }
  ++metrics_.writebacks;
  return Status::OK();
}

Status BufferPool::EvictIfNeeded() {
  while (table_.size() > capacity_) {
    // Scan from the LRU tail for an unpinned victim.
    Frame* victim = nullptr;
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      Frame* frame = table_.at(*rit).get();
      if (frame->pin_count == 0) {
        victim = frame;
        break;
      }
    }
    if (victim == nullptr) {
      // Everything is pinned: allow the pool to overflow.
      ++metrics_.overflows;
      return Status::OK();
    }
    Status s = WriteBack(victim);
    if (!s.ok()) return s;
    ++metrics_.evictions;
    lru_.erase(victim->lru_pos);
    table_.erase(victim->id);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : table_) {
    Status s = WriteBack(frame.get());
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  Status s = FlushAll();
  if (!s.ok()) return s;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second->pin_count == 0) {
      lru_.erase(it->second->lru_pos);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  TSSS_DCHECK(frame->pin_count > 0);
  --frame->pin_count;
  if (frame->pin_count == 0 && verify_clean_crc_ && !frame->dirty &&
      frame->crc_valid && PageCrc(frame->page) != frame->clean_crc) {
    // A clean frame's bytes changed: someone wrote through page() or a stale
    // pointer without MutablePage(). Recorded (not aborted) so AuditPins()
    // can report it and tests can exercise the detector.
    ++metrics_.crc_failures;
  }
}

std::size_t BufferPool::pinned_frames() const {
  std::size_t n = 0;
  for (const auto& [id, frame] : table_) {
    if (frame->pin_count > 0) ++n;
  }
  return n;
}

Status BufferPool::AuditPins() const {
  if (metrics_.crc_failures > 0) {
    return Status::Corruption(
        "clean-frame CRC verification failed " +
        std::to_string(metrics_.crc_failures) +
        " time(s): a page was modified without MutablePage()");
  }
  if (lru_.size() != table_.size()) {
    return Status::Corruption("LRU list has " + std::to_string(lru_.size()) +
                              " entries but the frame table has " +
                              std::to_string(table_.size()));
  }
  std::unordered_set<PageId> lru_ids;
  for (const PageId id : lru_) {
    if (!lru_ids.insert(id).second) {
      return Status::Corruption("page " + std::to_string(id) +
                                " appears twice in the LRU list");
    }
    if (table_.find(id) == table_.end()) {
      return Status::Corruption("LRU page " + std::to_string(id) +
                                " is not in the frame table");
    }
  }
  std::size_t dirty_recount = 0;
  for (const auto& [id, frame] : table_) {
    if (frame->id != id) {
      return Status::Corruption("frame for page " + std::to_string(id) +
                                " believes it is page " +
                                std::to_string(frame->id));
    }
    if (frame->pin_count < 0) {
      return Status::Corruption("page " + std::to_string(id) +
                                " has negative pin count " +
                                std::to_string(frame->pin_count));
    }
    if (frame->pin_count > 0) {
      return Status::FailedPrecondition(
          "page " + std::to_string(id) + " still has " +
          std::to_string(frame->pin_count) +
          " pin(s) at an operation boundary (leaked PageGuard)");
    }
    if (*frame->lru_pos != id) {
      return Status::Corruption("page " + std::to_string(id) +
                                " LRU back-pointer is stale");
    }
    if (frame->dirty) ++dirty_recount;
  }
  if (dirty_recount != dirty_count_) {
    return Status::Corruption(
        "dirty-frame accounting off: counter says " +
        std::to_string(dirty_count_) + ", recount found " +
        std::to_string(dirty_recount));
  }
  return Status::OK();
}

}  // namespace tsss::storage
