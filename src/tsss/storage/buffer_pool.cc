#include "tsss/storage/buffer_pool.h"

#include <cassert>
#include <string>
#include <utility>

namespace tsss::storage {

struct PageGuard::Frame {
  PageId id = kInvalidPageId;
  Page page;
  bool dirty = false;
  int pin_count = 0;
  std::list<PageId>::iterator lru_pos;
};

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

PageId PageGuard::id() const {
  assert(valid());
  return frame_->id;
}

const Page& PageGuard::page() const {
  assert(valid());
  return frame_->page;
}

Page& PageGuard::MutablePage() {
  assert(valid());
  frame_->dirty = true;
  return frame_->page;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = nullptr;
  }
}

BufferPool::BufferPool(PageStore* store, std::size_t capacity_pages)
    : store_(store), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

BufferPool::~BufferPool() {
  // Best-effort flush; errors here indicate the store died first, which the
  // single-threaded usage contract forbids.
  (void)FlushAll();
}

void BufferPool::TouchLru(Frame* frame) {
  lru_.erase(frame->lru_pos);
  lru_.push_front(frame->id);
  frame->lru_pos = lru_.begin();
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  ++metrics_.logical_reads;
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++metrics_.hits;
    Frame* frame = it->second.get();
    TouchLru(frame);
    ++frame->pin_count;
    return PageGuard(this, frame);
  }
  ++metrics_.misses;
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  Status s = store_->Read(id, &frame->page);
  if (!s.ok()) return s;
  lru_.push_front(id);
  frame->lru_pos = lru_.begin();
  frame->pin_count = 1;
  Frame* raw = frame.get();
  table_.emplace(id, std::move(frame));
  s = EvictIfNeeded();
  if (!s.ok()) return s;
  return PageGuard(this, raw);
}

Result<PageGuard> BufferPool::New() {
  ++metrics_.logical_reads;
  const PageId id = store_->Allocate();
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  frame->dirty = true;
  lru_.push_front(id);
  frame->lru_pos = lru_.begin();
  frame->pin_count = 1;
  Frame* raw = frame.get();
  table_.emplace(id, std::move(frame));
  Status s = EvictIfNeeded();
  if (!s.ok()) return s;
  return PageGuard(this, raw);
}

Status BufferPool::Delete(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame* frame = it->second.get();
    if (frame->pin_count > 0) {
      return Status::FailedPrecondition("deleting pinned page " +
                                        std::to_string(id));
    }
    lru_.erase(frame->lru_pos);
    table_.erase(it);
  }
  return store_->Free(id);
}

Status BufferPool::WriteBack(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  Status s = store_->Write(frame->id, frame->page);
  if (!s.ok()) return s;
  frame->dirty = false;
  ++metrics_.writebacks;
  return Status::OK();
}

Status BufferPool::EvictIfNeeded() {
  while (table_.size() > capacity_) {
    // Scan from the LRU tail for an unpinned victim.
    Frame* victim = nullptr;
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      Frame* frame = table_.at(*rit).get();
      if (frame->pin_count == 0) {
        victim = frame;
        break;
      }
    }
    if (victim == nullptr) {
      // Everything is pinned: allow the pool to overflow.
      ++metrics_.overflows;
      return Status::OK();
    }
    Status s = WriteBack(victim);
    if (!s.ok()) return s;
    ++metrics_.evictions;
    lru_.erase(victim->lru_pos);
    table_.erase(victim->id);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : table_) {
    Status s = WriteBack(frame.get());
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  Status s = FlushAll();
  if (!s.ok()) return s;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second->pin_count == 0) {
      lru_.erase(it->second->lru_pos);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  assert(frame->pin_count > 0);
  --frame->pin_count;
}

}  // namespace tsss::storage
