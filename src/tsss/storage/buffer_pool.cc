#include "tsss/storage/buffer_pool.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "tsss/common/check.h"
#include "tsss/common/crc32.h"
#include "tsss/obs/metrics.h"
#include "tsss/storage/query_counters.h"

namespace tsss::storage {

struct PageGuard::Frame {
  PageId id = kInvalidPageId;
  Page page;
  bool dirty = false;
  /// Atomic so audits and assertions may read it without the shard lock;
  /// all modifications happen under the owning shard's mutex.
  std::atomic<int> pin_count{0};
  /// CRC-32 of `page` as last loaded from / written back to the store.
  /// Only meaningful when `crc_valid`; used to detect stray writes to clean
  /// frames (see BufferPool class comment).
  std::uint32_t clean_crc = 0;
  bool crc_valid = false;
  std::list<PageId>::iterator lru_pos;
};

namespace {

std::uint32_t PageCrc(const Page& page) {
  return Crc32(page.bytes.data(), page.bytes.size());
}

/// Ticks the calling thread's per-query counters, if installed.
void CountQueryPoolRead(bool miss) {
  if (QueryCounters* qc = CurrentQueryCounters()) {
    ++qc->pool_logical_reads;
    if (miss) ++qc->pool_misses;
  }
}

/// Process-wide pool counters in the metrics registry, aggregated across
/// every BufferPool instance. Pointers are resolved once; each tick is one
/// relaxed atomic add on top of the per-instance AtomicMetrics.
struct PoolRegistryCounters {
  obs::Counter* logical_reads;
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* writebacks;
  obs::Counter* overflows;
  obs::Counter* crc_failures;
  obs::Counter* dtor_flush_failures;
};

const PoolRegistryCounters& PoolCounters() {
  static const PoolRegistryCounters counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return PoolRegistryCounters{
        reg.GetCounter("tsss_pool_logical_reads_total",
                       "Buffer-pool page requests (Fetch/New calls)"),
        reg.GetCounter("tsss_pool_hits_total", "Buffer-pool cache hits"),
        reg.GetCounter("tsss_pool_misses_total",
                       "Buffer-pool cache misses (store reads)"),
        reg.GetCounter("tsss_pool_evictions_total",
                       "Frames evicted to make room"),
        reg.GetCounter("tsss_pool_writebacks_total",
                       "Dirty frames written back to the store"),
        reg.GetCounter("tsss_pool_overflows_total",
                       "Times a shard exceeded its soft capacity"),
        reg.GetCounter("tsss_pool_crc_failures_total",
                       "Clean-frame CRC verification failures"),
        reg.GetCounter("tsss_pool_dtor_flush_failures_total",
                       "FlushAll failures during pool destruction (dirty "
                       "pages lost)"),
    };
  }();
  return counters;
}

}  // namespace

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

PageId PageGuard::id() const {
  TSSS_DCHECK(valid());
  return frame_->id;
}

const Page& PageGuard::page() const {
  TSSS_DCHECK(valid());
  return frame_->page;
}

Page& PageGuard::MutablePage() {
  TSSS_DCHECK(valid());
  pool_->MarkDirty(frame_);
  return frame_->page;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = nullptr;
  }
}

BufferPool::BufferPool(PageStore* store, std::size_t capacity_pages,
                       bool verify_clean_crc)
    : store_(store),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      verify_clean_crc_(verify_clean_crc) {
  num_shards_ = capacity_ >= kShardingMinCapacity ? kNumShards : 1;
  std::uint32_t bits = 0;
  for (std::size_t n = num_shards_; n > 1; n >>= 1) ++bits;
  shard_shift_ = 32u - bits;
  shard_capacity_ = (capacity_ + num_shards_ - 1) / num_shards_;
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors here indicate the store died first, which the
  // usage contract forbids. A destructor cannot propagate, but a silent
  // failure here is lost dirty pages — surface it through the registry so
  // an operator can see it happened.
  Status s = FlushAll();
  if (!s.ok()) PoolCounters().dtor_flush_failures->Inc();
}

void BufferPool::TouchLru(Shard& shard, Frame* frame) {
  shard.lru.erase(frame->lru_pos);
  shard.lru.push_front(frame->id);
  frame->lru_pos = shard.lru.begin();
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  ++metrics_.logical_reads;
  PoolCounters().logical_reads->Inc();
  if (labeled_logical_reads_ != nullptr) labeled_logical_reads_->Inc();
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto it = shard.table.find(id);
  if (it != shard.table.end()) {
    ++metrics_.hits;
    PoolCounters().hits->Inc();
    if (labeled_hits_ != nullptr) labeled_hits_->Inc();
    CountQueryPoolRead(/*miss=*/false);
    ProfileAccess(shard, id, /*miss=*/false);
    Frame* frame = it->second.get();
    TouchLru(shard, frame);
    frame->pin_count.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: pin_count mutated under shard mutex
    return PageGuard(this, frame);
  }
  ++metrics_.misses;
  PoolCounters().misses->Inc();
  if (labeled_misses_ != nullptr) labeled_misses_->Inc();
  CountQueryPoolRead(/*miss=*/true);
  ProfileAccess(shard, id, /*miss=*/true);
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  // The store read happens under the shard lock; concurrent misses on the
  // same page therefore load it exactly once, and misses on pages of other
  // shards proceed in parallel.
  Status s = store_->Read(id, &frame->page);
  if (!s.ok()) return s;
  if (verify_clean_crc_) {
    frame->clean_crc = PageCrc(frame->page);
    frame->crc_valid = true;
  }
  shard.lru.push_front(id);
  frame->lru_pos = shard.lru.begin();
  frame->pin_count.store(1, std::memory_order_relaxed);  // relaxed-ok: pin_count mutated under shard mutex
  Frame* raw = frame.get();
  shard.table.emplace(id, std::move(frame));
  s = EvictIfNeeded(shard);
  if (!s.ok()) return s;
  return PageGuard(this, raw);
}

Result<PageGuard> BufferPool::New() {
  ++metrics_.logical_reads;
  PoolCounters().logical_reads->Inc();
  if (labeled_logical_reads_ != nullptr) labeled_logical_reads_->Inc();
  CountQueryPoolRead(/*miss=*/false);
  const PageId id = store_->Allocate();
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  frame->dirty = true;
  ++shard.dirty;
  shard.lru.push_front(id);
  frame->lru_pos = shard.lru.begin();
  frame->pin_count.store(1, std::memory_order_relaxed);  // relaxed-ok: pin_count mutated under shard mutex
  Frame* raw = frame.get();
  shard.table.emplace(id, std::move(frame));
  Status s = EvictIfNeeded(shard);
  if (!s.ok()) return s;
  return PageGuard(this, raw);
}

Status BufferPool::Delete(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto it = shard.table.find(id);
  if (it != shard.table.end()) {
    Frame* frame = it->second.get();
    if (frame->pin_count.load(std::memory_order_relaxed) > 0) {  // relaxed-ok: pin_count mutated under shard mutex
      return Status::FailedPrecondition("deleting pinned page " +
                                        std::to_string(id));
    }
    if (frame->dirty) {
      TSSS_DCHECK(shard.dirty > 0);
      --shard.dirty;
    }
    shard.lru.erase(frame->lru_pos);
    shard.table.erase(it);
  }
  return store_->Free(id);
}

void BufferPool::MarkDirty(Frame* frame) {
  Shard& shard = ShardFor(frame->id);
  MutexLock lock(shard.mu);
  if (!frame->dirty) {
    frame->dirty = true;
    ++shard.dirty;
    // The bytes are about to diverge from the stored copy; the clean CRC is
    // refreshed on the next write-back.
    frame->crc_valid = false;
  }
}

Status BufferPool::WriteBack(Shard& shard, Frame* frame) {
  if (!frame->dirty) return Status::OK();
  Status s = store_->Write(frame->id, frame->page);
  if (!s.ok()) return s;
  frame->dirty = false;
  TSSS_DCHECK(shard.dirty > 0);
  --shard.dirty;
  if (verify_clean_crc_) {
    frame->clean_crc = PageCrc(frame->page);
    frame->crc_valid = true;
  }
  ++metrics_.writebacks;
  PoolCounters().writebacks->Inc();
  return Status::OK();
}

Status BufferPool::EvictIfNeeded(Shard& shard) {
  while (shard.table.size() > shard_capacity_) {
    // Scan from the LRU tail for an unpinned victim.
    Frame* victim = nullptr;
    for (auto rit = shard.lru.rbegin(); rit != shard.lru.rend(); ++rit) {
      Frame* frame = shard.table.at(*rit).get();
      if (frame->pin_count.load(std::memory_order_relaxed) == 0) {  // relaxed-ok: pin_count mutated under shard mutex
        victim = frame;
        break;
      }
    }
    if (victim == nullptr) {
      // Everything is pinned: allow the shard to overflow.
      ++metrics_.overflows;
      PoolCounters().overflows->Inc();
      return Status::OK();
    }
    Status s = WriteBack(shard, victim);
    if (!s.ok()) return s;
    ++metrics_.evictions;
    PoolCounters().evictions->Inc();
    if (labeled_evictions_ != nullptr) labeled_evictions_->Inc();
    if (profile_enabled_.load(std::memory_order_relaxed)) {  // relaxed-ok: profiling on/off flag, advisory
      PageAccessStats& tally = shard.profile[victim->id];
      tally.page = victim->id;
      ++tally.evictions;
    }
    shard.lru.erase(victim->lru_pos);
    shard.table.erase(victim->id);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (std::size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    for (auto& [id, frame] : shard.table) {
      Status s = WriteBack(shard, frame.get());
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  for (std::size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    for (auto& [id, frame] : shard.table) {
      Status s = WriteBack(shard, frame.get());
      if (!s.ok()) return s;
    }
    for (auto it = shard.table.begin(); it != shard.table.end();) {
      if (it->second->pin_count.load(std::memory_order_relaxed) == 0) {  // relaxed-ok: pin_count mutated under shard mutex
        shard.lru.erase(it->second->lru_pos);
        it = shard.table.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  Shard& shard = ShardFor(frame->id);
  MutexLock lock(shard.mu);
  const int prev = frame->pin_count.fetch_sub(1, std::memory_order_relaxed);  // relaxed-ok: pin_count mutated under shard mutex
  TSSS_DCHECK(prev > 0);
  if (prev == 1 && verify_clean_crc_ && !frame->dirty && frame->crc_valid &&
      PageCrc(frame->page) != frame->clean_crc) {
    // A clean frame's bytes changed: someone wrote through page() or a stale
    // pointer without MutablePage(). Recorded (not aborted) so AuditPins()
    // can report it and tests can exercise the detector.
    ++metrics_.crc_failures;
    PoolCounters().crc_failures->Inc();
  }
}

std::size_t BufferPool::pinned_frames() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    for (const auto& [id, frame] : shard.table) {
      if (frame->pin_count.load(std::memory_order_relaxed) > 0) ++n;  // relaxed-ok: pin_count mutated under shard mutex
    }
  }
  return n;
}

std::size_t BufferPool::dirty_frames() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    n += shard.dirty;
  }
  return n;
}

std::size_t BufferPool::size() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    n += shard.table.size();
  }
  return n;
}

BufferPoolMetrics BufferPool::metrics() const {
  BufferPoolMetrics out;
  out.logical_reads = metrics_.logical_reads.load(std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  out.hits = metrics_.hits.load(std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  out.misses = metrics_.misses.load(std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  out.evictions = metrics_.evictions.load(std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  out.writebacks = metrics_.writebacks.load(std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  out.overflows = metrics_.overflows.load(std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  out.crc_failures = metrics_.crc_failures.load(std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  return out;
}

void BufferPool::ProfileAccess(Shard& shard, PageId id, bool miss) {
  if (!profile_enabled_.load(std::memory_order_relaxed)) return;  // relaxed-ok: profiling on/off flag, advisory
  PageAccessStats& tally = shard.profile[id];
  tally.page = id;
  ++tally.accesses;
  if (miss) ++tally.misses;
}

void BufferPool::EnableAccessProfile(bool enabled) {
  if (enabled) {
    // Start from a clean slate so the profile covers exactly the workload
    // run while it is on.
    for (std::size_t i = 0; i < num_shards_; ++i) {
      Shard& shard = shards_[i];
      MutexLock lock(shard.mu);
      shard.profile.clear();
    }
  }
  profile_enabled_.store(enabled, std::memory_order_relaxed);  // relaxed-ok: profiling on/off flag, advisory
}

std::vector<PageAccessStats> BufferPool::AccessProfile() const {
  std::vector<PageAccessStats> out;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    out.reserve(out.size() + shard.profile.size());
    for (const auto& [id, tally] : shard.profile) out.push_back(tally);
  }
  std::sort(out.begin(), out.end(),
            [](const PageAccessStats& a, const PageAccessStats& b) {
              if (a.accesses != b.accesses) return a.accesses > b.accesses;
              return a.page < b.page;
            });
  return out;
}

void BufferPool::ResetMetrics() {
  metrics_.logical_reads.store(0, std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  metrics_.hits.store(0, std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  metrics_.misses.store(0, std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  metrics_.evictions.store(0, std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  metrics_.writebacks.store(0, std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  metrics_.overflows.store(0, std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
  metrics_.crc_failures.store(0, std::memory_order_relaxed);  // relaxed-ok: stats counter, advisory snapshot
}

void BufferPool::SetMetricsLabel(const std::string& key,
                                 const std::string& value) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  labeled_logical_reads_ =
      reg.GetCounter(obs::WithLabel("tsss_pool_logical_reads_total", key, value));
  labeled_hits_ = reg.GetCounter(obs::WithLabel("tsss_pool_hits_total", key, value));
  labeled_misses_ =
      reg.GetCounter(obs::WithLabel("tsss_pool_misses_total", key, value));
  labeled_evictions_ =
      reg.GetCounter(obs::WithLabel("tsss_pool_evictions_total", key, value));
}

Status BufferPool::AuditPins() const {
  if (metrics_.crc_failures.load(std::memory_order_relaxed) > 0) {  // relaxed-ok: stats counter, advisory snapshot
    return Status::Corruption(
        "clean-frame CRC verification failed " +
        std::to_string(metrics_.crc_failures.load(std::memory_order_relaxed)) +  // relaxed-ok: stats counter, advisory snapshot
        " time(s): a page was modified without MutablePage()");
  }
  std::size_t dirty_recount = 0;
  std::size_t dirty_counter = 0;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    if (shard.lru.size() != shard.table.size()) {
      return Status::Corruption(
          "LRU list has " + std::to_string(shard.lru.size()) +
          " entries but the frame table has " +
          std::to_string(shard.table.size()) + " (shard " + std::to_string(i) +
          ")");
    }
    std::unordered_set<PageId> lru_ids;
    for (const PageId id : shard.lru) {
      if (!lru_ids.insert(id).second) {
        return Status::Corruption("page " + std::to_string(id) +
                                  " appears twice in the LRU list");
      }
      if (shard.table.find(id) == shard.table.end()) {
        return Status::Corruption("LRU page " + std::to_string(id) +
                                  " is not in the frame table");
      }
    }
    for (const auto& [id, frame] : shard.table) {
      if (frame->id != id) {
        return Status::Corruption("frame for page " + std::to_string(id) +
                                  " believes it is page " +
                                  std::to_string(frame->id));
      }
      const int pins = frame->pin_count.load(std::memory_order_relaxed);  // relaxed-ok: pin_count mutated under shard mutex
      if (pins < 0) {
        return Status::Corruption("page " + std::to_string(id) +
                                  " has negative pin count " +
                                  std::to_string(pins));
      }
      if (pins > 0) {
        return Status::FailedPrecondition(
            "page " + std::to_string(id) + " still has " +
            std::to_string(pins) +
            " pin(s) at an operation boundary (leaked PageGuard)");
      }
      if (*frame->lru_pos != id) {
        return Status::Corruption("page " + std::to_string(id) +
                                  " LRU back-pointer is stale");
      }
      if (frame->dirty) ++dirty_recount;
    }
    dirty_counter += shard.dirty;
  }
  if (dirty_recount != dirty_counter) {
    return Status::Corruption(
        "dirty-frame accounting off: counter says " +
        std::to_string(dirty_counter) + ", recount found " +
        std::to_string(dirty_recount));
  }
  return Status::OK();
}

}  // namespace tsss::storage
