#ifndef TSSS_GEOM_VEC_H_
#define TSSS_GEOM_VEC_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tsss::geom {

/// Dense vector in R^n. Time sequences, points and vectors are regarded as
/// the same (paper, Section 3), so this type is used for all of them.
using Vec = std::vector<double>;

/// Scalar (dot) product <u, v>. Requires u.size() == v.size().
double Dot(std::span<const double> u, std::span<const double> v);

/// Squared Euclidean norm ||u||^2.
double NormSquared(std::span<const double> u);

/// Euclidean norm ||u||.
double Norm(std::span<const double> u);

/// Euclidean distance ||u - v||. Requires equal sizes.
double Distance(std::span<const double> u, std::span<const double> v);

/// Squared Euclidean distance ||u - v||^2. Requires equal sizes.
double DistanceSquared(std::span<const double> u, std::span<const double> v);

/// u + v.
Vec Add(std::span<const double> u, std::span<const double> v);

/// u - v.
Vec Sub(std::span<const double> u, std::span<const double> v);

/// a * u.
Vec Scale(std::span<const double> u, double a);

/// a * u + v ("axpy").
Vec Axpy(double a, std::span<const double> u, std::span<const double> v);

/// The shifting vector N(n) = (1, 1, ..., 1) of R^n (paper, Section 3).
Vec ShiftingVector(std::size_t n);

/// Sum of the components of u (== <u, N>).
double ComponentSum(std::span<const double> u);

/// True iff every component of u is (almost) zero.
bool IsZero(std::span<const double> u, double tol = 1e-12);

/// True iff u and v are (almost) parallel: |<u,v>| ~= ||u||*||v||.
/// Zero vectors are parallel to everything.
bool AreParallel(std::span<const double> u, std::span<const double> v,
                 double tol = 1e-9);

/// Projection of u along v: (<u,v>/||v||^2) * v. Requires ||v|| > 0.
Vec ProjectAlong(std::span<const double> u, std::span<const double> v);

/// Projection of u perpendicular to v: u - ProjectAlong(u, v).
Vec ProjectPerp(std::span<const double> u, std::span<const double> v);

/// L_p distance (paper, Section 1); p >= 1. p==2 is Euclidean.
double LpDistance(std::span<const double> u, std::span<const double> v, double p);

}  // namespace tsss::geom

#endif  // TSSS_GEOM_VEC_H_
