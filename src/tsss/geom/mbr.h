#ifndef TSSS_GEOM_MBR_H_
#define TSSS_GEOM_MBR_H_

#include <cstddef>
#include <span>
#include <string>

#include "tsss/geom/vec.h"

namespace tsss::geom {

/// Minimum bounding hyper-rectangle, defined by the two endpoints L(ow) and
/// H(igh) of its major diagonal (paper, Section 6.1). Invariant once
/// non-empty: lo[i] <= hi[i] for all i.
///
/// An empty Mbr (no points accumulated yet) is representable and is the
/// identity of Extend().
class Mbr {
 public:
  /// Creates an empty 0-dimensional MBR (placeholder; assign before use).
  Mbr() : empty_(true) {}

  /// Creates an empty MBR of the given dimensionality.
  explicit Mbr(std::size_t dim);

  /// Creates a degenerate MBR containing exactly `point`.
  static Mbr FromPoint(std::span<const double> point);

  /// Creates an MBR with explicit corners. Requires lo[i] <= hi[i].
  static Mbr FromCorners(Vec lo, Vec hi);

  std::size_t dim() const { return lo_.size(); }
  bool empty() const { return empty_; }
  const Vec& lo() const { return lo_; }
  const Vec& hi() const { return hi_; }

  /// Grows this MBR to contain `point`.
  void Extend(std::span<const double> point);

  /// Grows this MBR to contain `other`.
  void Extend(const Mbr& other);

  /// True iff `point` lies inside (closed) this MBR.
  bool Contains(std::span<const double> point) const;

  /// True iff `other` lies entirely inside this MBR.
  bool Contains(const Mbr& other) const;

  /// True iff the two MBRs share at least one point.
  bool Intersects(const Mbr& other) const;

  /// The epsilon-enlargement: every face pushed out by eps
  /// (paper, Section 6.1, "eps-MBR").
  Mbr Enlarged(double eps) const;

  /// Volume (product of side lengths); 0 for empty.
  double Volume() const;

  /// Margin: sum of side lengths (R*-tree split criterion); 0 for empty.
  double Margin() const;

  /// Volume of the intersection with `other` (0 when disjoint).
  double OverlapVolume(const Mbr& other) const;

  /// Volume of the smallest MBR containing both this and `other`.
  double EnlargedVolume(const Mbr& other) const;

  /// Center point. Requires non-empty.
  Vec Center() const;

  /// Half of the major-diagonal length. Requires non-empty.
  double HalfDiagonal() const;

  /// Smallest half side length (radius of the inscribed sphere).
  /// Requires non-empty.
  double MinHalfExtent() const;

  /// Squared Euclidean distance from `point` to this MBR (0 if inside).
  double DistanceSquaredTo(std::span<const double> point) const;

  /// "[lo..hi]" for debugging.
  std::string DebugString() const;

  friend bool operator==(const Mbr& a, const Mbr& b) {
    return a.empty_ == b.empty_ && a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  Vec lo_;
  Vec hi_;
  bool empty_;
};

}  // namespace tsss::geom

#endif  // TSSS_GEOM_MBR_H_
