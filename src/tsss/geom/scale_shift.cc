#include "tsss/geom/scale_shift.h"

#include <cmath>

#include "tsss/common/check.h"
#include "tsss/common/math_utils.h"
#include "tsss/geom/se_transform.h"

namespace tsss::geom {

Vec ScaleShift::Apply(std::span<const double> x) const {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = scale * x[i] + offset;
  return out;
}

Alignment AlignScaleShift(std::span<const double> u, std::span<const double> v) {
  TSSS_DCHECK(u.size() == v.size());
  TSSS_DCHECK(!u.empty());
  const Vec use = SeTransform(u);
  const Vec vse = SeTransform(v);
  const double uu = NormSquared(use);

  Alignment out;
  if (uu <= 0.0) {
    // Constant query: scaling cannot change its (zero) fluctuation, so the
    // best we can do is match the mean level with b.
    out.transform.scale = 0.0;
    out.transform.offset = Mean(v);
    out.distance = Norm(vse);
    return out;
  }
  const double a = Dot(use, vse) / uu;
  out.transform.scale = a;
  out.transform.offset = Mean(v) - a * Mean(u);
  // distance^2 = ||vse - a*use||^2; compute directly for numerical safety.
  double acc = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double d = vse[i] - a * use[i];
    acc += d * d;
  }
  out.distance = std::sqrt(acc);
  return out;
}

double ScaleShiftDistance(std::span<const double> u, std::span<const double> v) {
  return AlignScaleShift(u, v).distance;
}

bool SimilarScaleShift(std::span<const double> u, std::span<const double> v,
                       double eps) {
  return ScaleShiftDistance(u, v) <= eps;
}

}  // namespace tsss::geom
