#include "tsss/geom/line.h"

#include <cmath>

#include "tsss/common/check.h"

namespace tsss::geom {

double ClosestParamOnLine(std::span<const double> q, const Line& line) {
  const double dd = NormSquared(line.dir);
  if (dd <= 0.0) return 0.0;
  const Vec w = Sub(q, line.point);
  return Dot(w, line.dir) / dd;
}

double Pld(std::span<const double> q, const Line& line) {
  TSSS_DCHECK(q.size() == line.dim());
  const double t = ClosestParamOnLine(q, line);
  TSSS_DCHECK_FINITE(t);
  const Vec closest = line.At(t);
  const double dist = Distance(q, closest);
  TSSS_DCHECK_FINITE(dist);
  return dist;
}

LinePair ClosestBetweenLines(const Line& a, const Line& b) {
  TSSS_DCHECK(a.dim() == b.dim());
  const Vec w = Sub(a.point, b.point);  // p_a - p_b
  const double daa = NormSquared(a.dir);
  const double dbb = NormSquared(b.dir);
  const double dab = Dot(a.dir, b.dir);

  LinePair out;
  // Degenerate cases: one or both directions are zero vectors.
  if (daa <= 0.0 && dbb <= 0.0) {
    out.distance = Norm(w);
    return out;
  }
  if (daa <= 0.0) {
    out.tb = ClosestParamOnLine(a.point, b);
    out.distance = Distance(a.point, b.At(out.tb));
    return out;
  }
  if (dbb <= 0.0) {
    out.ta = ClosestParamOnLine(b.point, a);
    out.distance = Distance(b.point, a.At(out.ta));
    return out;
  }

  // Normal equations for min_t ||w + ta*da - tb*db||^2:
  //   daa*ta - dab*tb = -<da, w>
  //   dab*ta - dbb*tb = -<db, w>
  const double det = dab * dab - daa * dbb;  // <= 0 by Cauchy-Schwarz
  const double rel = std::fabs(det) / (daa * dbb);
  if (rel <= 1e-14) {
    // Parallel lines: fix ta = 0 and project a.point onto b (Lemma 2's
    // parallel branch, LLD = PLD(p1, L2)).
    out.ta = 0.0;
    out.tb = ClosestParamOnLine(a.point, b);
    out.distance = Distance(a.point, b.At(out.tb));
    return out;
  }
  const double daw = Dot(a.dir, w);
  const double dbw = Dot(b.dir, w);
  out.ta = (dab * dbw - dbb * daw) / (-det);
  out.tb = (daa * dbw - dab * daw) / (-det);
  out.distance = Distance(a.At(out.ta), b.At(out.tb));
  return out;
}

double Lld(const Line& a, const Line& b) { return ClosestBetweenLines(a, b).distance; }

}  // namespace tsss::geom
