#include "tsss/geom/sphere.h"

namespace tsss::geom {

Sphere Sphere::Outer(const Mbr& mbr) {
  return Sphere{mbr.Center(), mbr.HalfDiagonal()};
}

Sphere Sphere::Inner(const Mbr& mbr) {
  return Sphere{mbr.Center(), mbr.MinHalfExtent()};
}

bool Sphere::Contains(std::span<const double> point) const {
  return DistanceSquared(point, center) <= radius * radius;
}

bool LinePenetratesSphere(const Line& line, const Sphere& sphere) {
  return Pld(sphere.center, line) <= sphere.radius;
}

}  // namespace tsss::geom
