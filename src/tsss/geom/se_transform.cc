#include "tsss/geom/se_transform.h"

#include <cmath>

#include "tsss/common/math_utils.h"

namespace tsss::geom {

Vec SeTransform(std::span<const double> p) {
  Vec out(p.begin(), p.end());
  SeTransformInPlace(out);
  return out;
}

double SeTransformInPlace(std::span<double> p) {
  // TSSS_HOT_BEGIN(se_transform) — runs once per window at index-build time
  // and once per candidate window on the query path.
  const double mean = Mean(p);
  for (double& x : p) x -= mean;
  return mean;
  // TSSS_HOT_END(se_transform)
}

Line SeLine(std::span<const double> u) {
  Vec dir = SeTransform(u);
  return Line{Vec(u.size(), 0.0), std::move(dir)};
}

bool OnSePlane(std::span<const double> p, double tol) {
  return std::fabs(Mean(p)) <= tol;
}

}  // namespace tsss::geom
