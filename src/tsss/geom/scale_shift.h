#ifndef TSSS_GEOM_SCALE_SHIFT_H_
#define TSSS_GEOM_SCALE_SHIFT_H_

#include <span>

#include "tsss/geom/vec.h"

namespace tsss::geom {

/// The scale-shift transformation F_{a,b}(x) = a*x + b*N (paper, Def. 1).
struct ScaleShift {
  double scale = 1.0;   ///< a
  double offset = 0.0;  ///< b

  /// Applies F_{a,b} to x.
  Vec Apply(std::span<const double> x) const;
};

/// Result of the optimal scale-shift alignment of u onto v.
struct Alignment {
  ScaleShift transform;   ///< argmin_{a,b} ||F_{a,b}(u) - v||
  double distance = 0.0;  ///< min_{a,b}   ||F_{a,b}(u) - v||  (== LLD, Thm 1)
};

/// Computes the optimal alignment of u onto v in closed form
/// (paper, Section 5.2):
///
///   a = <T_se(u), T_se(v)> / ||T_se(u)||^2,   b = mean(v) - a * mean(u),
///   distance = || a*T_se(u) - T_se(v) ||.
///
/// When u is constant (||T_se(u)|| == 0) every a gives the same residual; we
/// return a = 0 and b = mean(v), with distance ||T_se(v)||.
/// Requires u.size() == v.size() and both non-empty.
Alignment AlignScaleShift(std::span<const double> u, std::span<const double> v);

/// Minimum scale-shift distance: min_{a,b} ||a*u + b*N - v||.
/// Equal to LLD(Line_sa(u), Line_sh(v)) by Theorem 1.
double ScaleShiftDistance(std::span<const double> u, std::span<const double> v);

/// True iff u ~eps v under Definition 1.
bool SimilarScaleShift(std::span<const double> u, std::span<const double> v,
                       double eps);

}  // namespace tsss::geom

#endif  // TSSS_GEOM_SCALE_SHIFT_H_
