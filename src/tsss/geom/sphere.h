#ifndef TSSS_GEOM_SPHERE_H_
#define TSSS_GEOM_SPHERE_H_

#include "tsss/geom/line.h"
#include "tsss/geom/mbr.h"
#include "tsss/geom/vec.h"

namespace tsss::geom {

/// Hypersphere in R^n, used by the paper's Bounding-Spheres penetration
/// heuristic (Section 7): the inner sphere is inscribed in the eps-MBR, the
/// outer sphere circumscribes it.
struct Sphere {
  Vec center;
  double radius = 0.0;

  /// Outer bounding sphere: centered at the MBR center with radius equal to
  /// the half diagonal, so the MBR is inside the sphere. Requires non-empty.
  static Sphere Outer(const Mbr& mbr);

  /// Inner bounding sphere: centered at the MBR center with radius equal to
  /// the smallest half extent, so the sphere is inside the MBR.
  /// Requires non-empty.
  static Sphere Inner(const Mbr& mbr);

  /// True iff `point` lies inside the (closed) sphere.
  bool Contains(std::span<const double> point) const;
};

/// True iff the line passes through (or touches) the sphere:
/// PLD(center, line) <= radius.
bool LinePenetratesSphere(const Line& line, const Sphere& sphere);

}  // namespace tsss::geom

#endif  // TSSS_GEOM_SPHERE_H_
