#include "tsss/geom/vec.h"

#include <cmath>

#include "tsss/common/check.h"

namespace tsss::geom {

double Dot(std::span<const double> u, std::span<const double> v) {
  TSSS_DCHECK(u.size() == v.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) acc += u[i] * v[i];
  return acc;
}

double NormSquared(std::span<const double> u) { return Dot(u, u); }

double Norm(std::span<const double> u) { return std::sqrt(NormSquared(u)); }

double DistanceSquared(std::span<const double> u, std::span<const double> v) {
  TSSS_DCHECK(u.size() == v.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double d = u[i] - v[i];
    acc += d * d;
  }
  return acc;
}

double Distance(std::span<const double> u, std::span<const double> v) {
  return std::sqrt(DistanceSquared(u, v));
}

Vec Add(std::span<const double> u, std::span<const double> v) {
  TSSS_DCHECK(u.size() == v.size());
  Vec out(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) out[i] = u[i] + v[i];
  return out;
}

Vec Sub(std::span<const double> u, std::span<const double> v) {
  TSSS_DCHECK(u.size() == v.size());
  Vec out(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) out[i] = u[i] - v[i];
  return out;
}

Vec Scale(std::span<const double> u, double a) {
  Vec out(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) out[i] = a * u[i];
  return out;
}

Vec Axpy(double a, std::span<const double> u, std::span<const double> v) {
  TSSS_DCHECK(u.size() == v.size());
  Vec out(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) out[i] = a * u[i] + v[i];
  return out;
}

Vec ShiftingVector(std::size_t n) { return Vec(n, 1.0); }

double ComponentSum(std::span<const double> u) {
  double acc = 0.0;
  for (double x : u) acc += x;
  return acc;
}

bool IsZero(std::span<const double> u, double tol) {
  for (double x : u) {
    if (std::fabs(x) > tol) return false;
  }
  return true;
}

bool AreParallel(std::span<const double> u, std::span<const double> v, double tol) {
  const double nu = Norm(u);
  const double nv = Norm(v);
  if (nu <= tol || nv <= tol) return true;
  const double cos_angle = Dot(u, v) / (nu * nv);
  return std::fabs(std::fabs(cos_angle) - 1.0) <= tol;
}

Vec ProjectAlong(std::span<const double> u, std::span<const double> v) {
  const double denom = NormSquared(v);
  TSSS_DCHECK(denom > 0.0);
  return Scale(v, Dot(u, v) / denom);
}

Vec ProjectPerp(std::span<const double> u, std::span<const double> v) {
  const Vec along = ProjectAlong(u, v);
  return Sub(u, along);
}

double LpDistance(std::span<const double> u, std::span<const double> v, double p) {
  TSSS_DCHECK(u.size() == v.size());
  TSSS_DCHECK(p >= 1.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    acc += std::pow(std::fabs(u[i] - v[i]), p);
  }
  return std::pow(acc, 1.0 / p);
}

}  // namespace tsss::geom
