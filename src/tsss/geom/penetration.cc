#include "tsss/geom/penetration.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tsss/common/check.h"
#include "tsss/geom/sphere.h"

namespace tsss::geom {

SlabResult LineMbrSlab(const Line& line, const Mbr& mbr) {
  TSSS_DCHECK(line.dim() == mbr.dim());
  SlabResult out;
  if (mbr.empty()) return out;

  // TSSS_HOT_BEGIN(penetration_slab) — the EP penetration test; executed for
  // every R-tree entry the traversal touches.
  double t_enter = -std::numeric_limits<double>::infinity();
  double t_exit = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < mbr.dim(); ++i) {
    const double p = line.point[i];
    const double d = line.dir[i];
    const double lo = mbr.lo()[i];
    const double hi = mbr.hi()[i];
    if (d == 0.0) {
      // The line is parallel to this slab; it must already be inside it.
      if (p < lo || p > hi) return out;
      continue;
    }
    double t0 = (lo - p) / d;
    double t1 = (hi - p) / d;
    if (t0 > t1) std::swap(t0, t1);
    t_enter = std::max(t_enter, t0);
    t_exit = std::min(t_exit, t1);
    if (t_enter > t_exit) return out;
  }
  out.penetrates = true;
  out.t_enter = t_enter;
  out.t_exit = t_exit;
  return out;
  // TSSS_HOT_END(penetration_slab)
}

bool LinePenetratesMbr(const Line& line, const Mbr& mbr) {
  return LineMbrSlab(line, mbr).penetrates;
}

namespace {

/// Squared distance from the line point at parameter t to the box.
double BoxDistSquaredAt(const Line& line, const Mbr& mbr, double t) {
  // TSSS_HOT_BEGIN(penetration_box_dist)
  double acc = 0.0;
  for (std::size_t i = 0; i < mbr.dim(); ++i) {
    const double x = line.point[i] + t * line.dir[i];
    double d = 0.0;
    if (x < mbr.lo()[i]) {
      d = mbr.lo()[i] - x;
    } else if (x > mbr.hi()[i]) {
      d = x - mbr.hi()[i];
    }
    acc += d * d;
  }
  return acc;
  // TSSS_HOT_END(penetration_box_dist)
}

/// Unconstrained minimiser of the quadratic piece of f(t) whose active set is
/// determined at `t_probe`; returns false when the piece is constant in t.
bool PieceVertex(const Line& line, const Mbr& mbr, double t_probe, double* t_out) {
  double a = 0.0;  // sum of d_i^2 over active axes
  double b = 0.0;  // f'(t)/2 = a*t + b on this piece
  for (std::size_t i = 0; i < mbr.dim(); ++i) {
    const double d = line.dir[i];
    if (d == 0.0) continue;
    const double x = line.point[i] + t_probe * d;
    if (x < mbr.lo()[i]) {
      a += d * d;
      b += d * (line.point[i] - mbr.lo()[i]);
    } else if (x > mbr.hi()[i]) {
      a += d * d;
      b += d * (line.point[i] - mbr.hi()[i]);
    }
  }
  if (a <= 0.0) return false;
  *t_out = -b / a;
  return true;
}

}  // namespace

double LineMbrDistance(const Line& line, const Mbr& mbr) {
  TSSS_DCHECK(line.dim() == mbr.dim());
  if (mbr.empty()) return std::numeric_limits<double>::infinity();

  // Degenerate line: point-to-box distance.
  if (IsZero(line.dir, 0.0)) {
    return std::sqrt(mbr.DistanceSquaredTo(line.point));
  }

  // If the line passes through the box the distance is exactly zero.
  if (LinePenetratesMbr(line, mbr)) return 0.0;

  // Collect the breakpoints where some coordinate of L(t) crosses a face
  // plane; between consecutive breakpoints f(t) = dist^2(L(t), box) is a
  // single quadratic.
  std::vector<double> ts;
  ts.reserve(2 * mbr.dim());
  for (std::size_t i = 0; i < mbr.dim(); ++i) {
    const double d = line.dir[i];
    if (d == 0.0) continue;
    ts.push_back((mbr.lo()[i] - line.point[i]) / d);
    ts.push_back((mbr.hi()[i] - line.point[i]) / d);
  }
  std::sort(ts.begin(), ts.end());

  double best = std::numeric_limits<double>::infinity();
  auto consider = [&](double t) { best = std::min(best, BoxDistSquaredAt(line, mbr, t)); };

  // Candidate minimisers: every breakpoint, plus each piece's own vertex
  // (clamped into the piece).
  for (double t : ts) consider(t);
  for (std::size_t k = 0; k + 1 <= ts.size(); ++k) {
    double t_lo;
    double t_hi;
    double t_probe;
    if (k == 0) {
      t_lo = -std::numeric_limits<double>::infinity();
      t_hi = ts.front();
      t_probe = t_hi - 1.0;
    } else if (k == ts.size()) {
      break;
    } else {
      t_lo = ts[k - 1];
      t_hi = ts[k];
      t_probe = 0.5 * (t_lo + t_hi);
    }
    double vertex;
    if (PieceVertex(line, mbr, t_probe, &vertex)) {
      consider(std::clamp(vertex, t_lo, t_hi));
    }
  }
  // Last (unbounded above) piece.
  {
    const double t_probe = ts.back() + 1.0;
    double vertex;
    if (PieceVertex(line, mbr, t_probe, &vertex)) {
      consider(std::max(vertex, ts.back()));
    }
  }
  return std::sqrt(best);
}

std::string_view PruneStrategyToString(PruneStrategy s) {
  switch (s) {
    case PruneStrategy::kEepOnly:
      return "eep";
    case PruneStrategy::kBoundingSpheres:
      return "spheres";
    case PruneStrategy::kExactDistance:
      return "exact";
  }
  return "unknown";
}

bool ShouldVisit(const Line& line, const Mbr& mbr, double eps,
                 PruneStrategy strategy, PenetrationStats* stats) {
  TSSS_DCHECK(eps >= 0.0);
  if (stats != nullptr) ++stats->tests;
  if (mbr.empty()) return false;

  bool visit = false;
  switch (strategy) {
    case PruneStrategy::kEepOnly: {
      if (stats != nullptr) ++stats->slab_tests;
      visit = LinePenetratesMbr(line, mbr.Enlarged(eps));
      break;
    }
    case PruneStrategy::kBoundingSpheres: {
      const Mbr enlarged = mbr.Enlarged(eps);
      if (stats != nullptr) ++stats->sphere_tests;
      const double pld = Pld(enlarged.Center(), line);
      if (pld > enlarged.HalfDiagonal()) {
        // Outer sphere missed: the box cannot be penetrated.
        if (stats != nullptr) ++stats->outer_rejects;
        visit = false;
        break;
      }
      if (pld <= enlarged.MinHalfExtent()) {
        // Inner sphere hit: the box is certainly penetrated.
        if (stats != nullptr) ++stats->inner_accepts;
        visit = true;
        break;
      }
      if (stats != nullptr) ++stats->slab_tests;
      visit = LinePenetratesMbr(line, enlarged);
      break;
    }
    case PruneStrategy::kExactDistance: {
      if (stats != nullptr) ++stats->exact_tests;
      visit = LineMbrDistance(line, mbr) <= eps;
      break;
    }
  }
  if (visit && stats != nullptr) ++stats->visits;
  return visit;
}

}  // namespace tsss::geom
