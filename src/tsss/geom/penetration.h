#ifndef TSSS_GEOM_PENETRATION_H_
#define TSSS_GEOM_PENETRATION_H_

#include <cstdint>
#include <string>

#include "tsss/geom/line.h"
#include "tsss/geom/mbr.h"

namespace tsss::geom {

/// Result of the Entering/Exiting-Points (slab) test of a line against a box.
/// When `penetrates`, the line is inside the box for t in [t_enter, t_exit].
struct SlabResult {
  bool penetrates = false;
  double t_enter = 0.0;
  double t_exit = 0.0;
};

/// Entering/Exiting Points method (paper, Section 7): exact test of whether
/// line L(t) = p + t*d passes through the closed hyper-rectangle `mbr`.
/// A degenerate line (zero direction) penetrates iff its point is inside.
SlabResult LineMbrSlab(const Line& line, const Mbr& mbr);

/// Convenience wrapper returning only the boolean verdict.
bool LinePenetratesMbr(const Line& line, const Mbr& mbr);

/// Exact shortest Euclidean distance between a line and a hyper-rectangle
/// (0 when they intersect). The squared distance is convex piecewise
/// quadratic in t; we scan its breakpoint segments and minimise each piece
/// analytically, so the result is exact up to rounding.
double LineMbrDistance(const Line& line, const Mbr& mbr);

/// Node-pruning strategies for the tree search. These correspond to the
/// paper's experiment sets plus one extension:
///  * kEepOnly          — experiment set 2: slab test on the eps-MBR.
///  * kBoundingSpheres  — experiment set 3: outer/inner sphere heuristic
///                        short-circuiting the slab test.
///  * kExactDistance    — extension: LineMbrDistance(line, MBR) <= eps, a
///                        strictly tighter (still no-false-dismissal) test.
enum class PruneStrategy : std::uint8_t {
  kEepOnly = 0,
  kBoundingSpheres = 1,
  kExactDistance = 2,
};

std::string_view PruneStrategyToString(PruneStrategy s);

/// Counters describing how penetration decisions were reached; used by the
/// bounding-spheres ablation (DESIGN.md experiment A1).
struct PenetrationStats {
  std::uint64_t tests = 0;           ///< total ShouldVisit calls
  std::uint64_t visits = 0;          ///< decisions to descend
  std::uint64_t outer_rejects = 0;   ///< pruned by the outer sphere alone
  std::uint64_t inner_accepts = 0;   ///< admitted by the inner sphere alone
  std::uint64_t slab_tests = 0;      ///< slab tests actually executed
  std::uint64_t sphere_tests = 0;    ///< sphere PLD evaluations
  std::uint64_t exact_tests = 0;     ///< exact line-box distance evaluations

  void Reset() { *this = PenetrationStats{}; }
};

/// Decides whether a node with bounding box `mbr` may contain a point within
/// `eps` of `line`, using `strategy`. All strategies are conservative
/// (no false dismissals, Theorem 3). `stats` may be null.
bool ShouldVisit(const Line& line, const Mbr& mbr, double eps,
                 PruneStrategy strategy, PenetrationStats* stats);

}  // namespace tsss::geom

#endif  // TSSS_GEOM_PENETRATION_H_
