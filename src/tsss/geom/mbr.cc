#include "tsss/geom/mbr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "tsss/common/check.h"

namespace tsss::geom {

Mbr::Mbr(std::size_t dim) : lo_(dim, 0.0), hi_(dim, 0.0), empty_(true) {}

Mbr Mbr::FromPoint(std::span<const double> point) {
  Mbr m(point.size());
  m.Extend(point);
  return m;
}

Mbr Mbr::FromCorners(Vec lo, Vec hi) {
  TSSS_DCHECK(lo.size() == hi.size());
  Mbr m(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) TSSS_DCHECK(lo[i] <= hi[i]);
  m.lo_ = std::move(lo);
  m.hi_ = std::move(hi);
  m.empty_ = false;
  return m;
}

void Mbr::Extend(std::span<const double> point) {
  TSSS_DCHECK(point.size() == dim());
  // NaN coordinates poison every min/max and turn containment tests into
  // silent false dismissals; catch them at the boundary where boxes grow.
  for (const double x : point) TSSS_DCHECK_FINITE(x);
  if (empty_) {
    std::copy(point.begin(), point.end(), lo_.begin());
    std::copy(point.begin(), point.end(), hi_.begin());
    empty_ = false;
    return;
  }
  for (std::size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], point[i]);
    hi_[i] = std::max(hi_[i], point[i]);
  }
}

void Mbr::Extend(const Mbr& other) {
  TSSS_DCHECK(other.dim() == dim());
  if (other.empty_) return;
  if (empty_) {
    *this = other;
    return;
  }
  for (std::size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

bool Mbr::Contains(std::span<const double> point) const {
  TSSS_DCHECK(point.size() == dim());
  if (empty_) return false;
  for (std::size_t i = 0; i < dim(); ++i) {
    if (point[i] < lo_[i] || point[i] > hi_[i]) return false;
  }
  return true;
}

bool Mbr::Contains(const Mbr& other) const {
  TSSS_DCHECK(other.dim() == dim());
  if (empty_ || other.empty_) return false;
  for (std::size_t i = 0; i < dim(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Mbr::Intersects(const Mbr& other) const {
  TSSS_DCHECK(other.dim() == dim());
  if (empty_ || other.empty_) return false;
  for (std::size_t i = 0; i < dim(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

Mbr Mbr::Enlarged(double eps) const {
  TSSS_DCHECK(eps >= 0.0);
  if (empty_) return *this;
  Mbr out = *this;
  for (std::size_t i = 0; i < dim(); ++i) {
    out.lo_[i] -= eps;
    out.hi_[i] += eps;
  }
  return out;
}

double Mbr::Volume() const {
  if (empty_) return 0.0;
  double v = 1.0;
  for (std::size_t i = 0; i < dim(); ++i) v *= hi_[i] - lo_[i];
  return v;
}

double Mbr::Margin() const {
  if (empty_) return 0.0;
  double m = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) m += hi_[i] - lo_[i];
  return m;
}

double Mbr::OverlapVolume(const Mbr& other) const {
  TSSS_DCHECK(other.dim() == dim());
  if (empty_ || other.empty_) return 0.0;
  double v = 1.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double lo = std::max(lo_[i], other.lo_[i]);
    const double hi = std::min(hi_[i], other.hi_[i]);
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

double Mbr::EnlargedVolume(const Mbr& other) const {
  Mbr merged = *this;
  merged.Extend(other);
  return merged.Volume();
}

Vec Mbr::Center() const {
  TSSS_DCHECK(!empty_);
  Vec c(dim());
  for (std::size_t i = 0; i < dim(); ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
  return c;
}

double Mbr::HalfDiagonal() const {
  TSSS_DCHECK(!empty_);
  double acc = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double half = 0.5 * (hi_[i] - lo_[i]);
    acc += half * half;
  }
  return std::sqrt(acc);
}

double Mbr::MinHalfExtent() const {
  TSSS_DCHECK(!empty_);
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < dim(); ++i) m = std::min(m, 0.5 * (hi_[i] - lo_[i]));
  return m;
}

double Mbr::DistanceSquaredTo(std::span<const double> point) const {
  TSSS_DCHECK(point.size() == dim());
  TSSS_DCHECK(!empty_);
  double acc = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    double d = 0.0;
    if (point[i] < lo_[i]) {
      d = lo_[i] - point[i];
    } else if (point[i] > hi_[i]) {
      d = point[i] - hi_[i];
    }
    acc += d * d;
  }
  return acc;
}

std::string Mbr::DebugString() const {
  std::ostringstream os;
  if (empty_) return "[empty]";
  os << "[(";
  for (std::size_t i = 0; i < dim(); ++i) os << (i ? "," : "") << lo_[i];
  os << ")..(";
  for (std::size_t i = 0; i < dim(); ++i) os << (i ? "," : "") << hi_[i];
  os << ")]";
  return os.str();
}

}  // namespace tsss::geom
