#ifndef TSSS_GEOM_LINE_H_
#define TSSS_GEOM_LINE_H_

#include <span>

#include "tsss/geom/vec.h"

namespace tsss::geom {

/// A line in R^n: L(t) = point + t * dir, t in R (paper, Section 4, item 5).
///
/// `dir` may be the zero vector, in which case the "line" degenerates to the
/// single point `point`. All distance functions below handle that case; it
/// arises naturally for the scaling line of a constant query sequence, whose
/// SE-transform is zero.
struct Line {
  Vec point;
  Vec dir;

  /// The position vector L(t) = point + t*dir.
  Vec At(double t) const { return Axpy(t, dir, point); }

  std::size_t dim() const { return point.size(); }

  /// The scaling line of u: {a*u : a in R} (paper, Section 5).
  static Line ScalingLine(std::span<const double> u) {
    return Line{Vec(u.size(), 0.0), Vec(u.begin(), u.end())};
  }

  /// The shifting line of v: {v + b*N : b in R} (paper, Section 5).
  static Line ShiftingLine(std::span<const double> v) {
    return Line{Vec(v.begin(), v.end()), ShiftingVector(v.size())};
  }
};

/// PLD(q, L): shortest Euclidean distance between point q and line L
/// (paper, Lemma 1). Degenerate lines yield the point-to-point distance.
double Pld(std::span<const double> q, const Line& line);

/// Parameter t* minimizing ||L(t) - q||; 0 for a degenerate line.
double ClosestParamOnLine(std::span<const double> q, const Line& line);

/// LLD(L1, L2): shortest Euclidean distance between two lines
/// (paper, Lemma 2).
///
/// Implementation note: the formula printed in the paper normalises the
/// second projection by ||d2||^2; the correct normaliser is ||d2_perp||^2
/// (project the offset onto the orthogonal complement of span{d1, d2}).
/// We implement the correct Gram-Schmidt form; for the parallel case it
/// reduces to PLD(p1, L2) exactly as the lemma states.
double Lld(const Line& a, const Line& b);

/// Parameters (ta, tb) attaining the minimum distance between two lines.
/// For parallel or degenerate configurations a valid (non-unique) minimiser
/// is returned.
struct LinePair {
  double ta = 0.0;
  double tb = 0.0;
  double distance = 0.0;
};
LinePair ClosestBetweenLines(const Line& a, const Line& b);

}  // namespace tsss::geom

#endif  // TSSS_GEOM_LINE_H_
