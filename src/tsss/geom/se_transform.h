#ifndef TSSS_GEOM_SE_TRANSFORM_H_
#define TSSS_GEOM_SE_TRANSFORM_H_

#include <span>

#include "tsss/geom/line.h"
#include "tsss/geom/vec.h"

namespace tsss::geom {

/// Shift-Eliminated Transformation (paper, Definition 2):
///
///   T_se(p) = p - (<p, N> / ||N||^2) * N = p - mean(p) * N.
///
/// T_se projects p along N = (1,...,1) onto the SE-Plane, the (n-1)-
/// dimensional hyperplane of zero-mean vectors through the origin. It is
/// linear, collapses every shifting line to a single point, and maps every
/// scaling line to a line through the origin (the SE-line).
Vec SeTransform(std::span<const double> p);

/// In-place variant of SeTransform. Returns the subtracted mean, which is
/// exactly the component of p along N / n (needed to recover shifts).
double SeTransformInPlace(std::span<double> p);

/// The SE-line of u: {t * T_se(u) : t in R} (paper, Section 5.1, property 3).
Line SeLine(std::span<const double> u);

/// True iff p lies (numerically) on the SE-plane, i.e. has zero mean.
bool OnSePlane(std::span<const double> p, double tol = 1e-9);

}  // namespace tsss::geom

#endif  // TSSS_GEOM_SE_TRANSFORM_H_
