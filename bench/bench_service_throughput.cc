// Service throughput: a closed-loop multithreaded driver over QueryService.
//
// For each worker count in {1, 2, 4, 8}, TSSS_CLIENTS client threads (default
// 2x workers) each submit one range query at a time and wait for its future
// (closed loop), for a fixed wall-time window. Reported per sweep point:
// queries/sec, client-observed p50/p99 latency, and the service's own
// histogram percentiles. Output is one JSON object per line so the sweep is
// machine-readable (jq-friendly) straight out of run_benches.sh.
//
// Extra environment knobs on top of bench_common.h:
//   TSSS_SERVICE_SECONDS=S  wall time per sweep point (default 2)
//   TSSS_CLIENTS=N          fixed client-thread count (default 2x workers)

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "tsss/service/query_service.h"

namespace {

double PercentileUs(std::vector<double>* latencies_us, double q) {
  if (latencies_us->empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies_us->size() - 1));
  std::nth_element(latencies_us->begin(),
                   latencies_us->begin() + static_cast<std::ptrdiff_t>(rank),
                   latencies_us->end());
  return (*latencies_us)[rank];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const double seconds =
      static_cast<double>(bench::EnvSizeT("TSSS_SERVICE_SECONDS", 2));
  const std::size_t fixed_clients = bench::EnvSizeT("TSSS_CLIENTS", 0);
  const double eps = 0.25;

  bench::JsonReport report("service_throughput", env);
  report.meta().Set("eps", eps).Set("seconds_per_point", seconds);

  const auto market = bench::MakeMarket(env);
  core::EngineConfig config;
  auto engine = bench::BuildEngine(config, market);
  const auto queries = bench::MakeQueries(market, env.queries, config.window);

  std::fprintf(stderr,
               "# service throughput: %zu windows, eps = %.2f, %.0fs per "
               "sweep point\n",
               engine->num_indexed_windows(), eps, seconds);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    service::ServiceConfig service_config;
    service_config.num_workers = workers;
    service_config.queue_capacity = 4 * workers;
    auto service = service::QueryService::Create(engine.get(), service_config);
    if (!service.ok()) {
      std::fprintf(stderr, "service creation failed: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }

    const std::size_t clients =
        fixed_clients > 0 ? fixed_clients : 2 * workers;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::vector<std::vector<double>> client_latencies_us(clients);
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        std::size_t next = c;  // stagger the query mix across clients
        while (!stop.load(std::memory_order_relaxed)) {
          service::QueryRequest request;
          request.kind = service::QueryKind::kRange;
          request.query = queries[next++ % queries.size()];
          request.eps = eps;
          const bench::Timer timer;
          auto future = (*service)->Submit(std::move(request));
          if (!future.ok()) {
            // Closed loop: a rejection means the queue is saturated; retry
            // after yielding so the drain makes progress.
            rejected.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
            continue;
          }
          const service::QueryResponse response = future->get();
          if (!response.status.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         response.status.ToString().c_str());
            std::exit(1);
          }
          client_latencies_us[c].push_back(1e6 * timer.Seconds());
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    const bench::Timer wall;
    while (wall.Seconds() < seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : client_threads) t.join();
    const double elapsed = wall.Seconds();

    const service::ServiceMetrics metrics = (*service)->Stats();
    std::vector<double> all_latencies_us;
    for (const auto& per_client : client_latencies_us) {
      all_latencies_us.insert(all_latencies_us.end(), per_client.begin(),
                              per_client.end());
    }
    const double p50_us = PercentileUs(&all_latencies_us, 0.50);
    const double p99_us = PercentileUs(&all_latencies_us, 0.99);

    std::printf(
        "{\"bench\":\"service_throughput\",\"workers\":%zu,\"clients\":%zu,"
        "\"seconds\":%.2f,\"queries\":%llu,\"qps\":%.1f,"
        "\"client_p50_ms\":%.3f,\"client_p99_ms\":%.3f,"
        "\"service_p50_ms\":%.3f,\"service_p99_ms\":%.3f,"
        "\"rejected\":%llu,\"pool_hit_rate\":%.4f}\n",
        workers, clients, elapsed,
        static_cast<unsigned long long>(completed.load()),
        static_cast<double>(completed.load()) / elapsed, p50_us / 1e3,
        p99_us / 1e3, metrics.p50_latency_ms, metrics.p99_latency_ms,
        static_cast<unsigned long long>(rejected.load()),
        metrics.pool_hit_rate);
    std::fflush(stdout);
    report.AddRow()
        .Set("workers", workers)
        .Set("clients", clients)
        .Set("seconds", elapsed)
        .Set("queries", completed.load())
        .Set("qps", static_cast<double>(completed.load()) / elapsed)
        .Set("client_p50_ms", p50_us / 1e3)
        .Set("client_p99_ms", p99_us / 1e3)
        .Set("service_p50_ms", metrics.p50_latency_ms)
        .Set("service_p99_ms", metrics.p99_latency_ms)
        .Set("rejected", rejected.load())
        .Set("pool_hit_rate", metrics.pool_hit_rate);
  }
  report.MaybeWrite(argc, argv);
  return 0;
}
