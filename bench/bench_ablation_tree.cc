// Ablation A4: R-tree engineering choices the paper fixes silently -
// split algorithm (Guttman linear/quadratic vs R*), internal fanout M, and
// bulk loading vs one-by-one insertion.

#include "bench_common.h"

namespace {

struct RunResult {
  double build_seconds = 0.0;
  double query_ms = 0.0;
  double pages = 0.0;
  double overlap = 0.0;
  std::size_t height = 0;
  std::size_t nodes = 0;
};

RunResult RunConfig(const std::vector<tsss::seq::TimeSeries>& market,
                    const std::vector<tsss::geom::Vec>& queries,
                    tsss::index::SplitAlgorithm split, std::size_t fanout,
                    bool bulk, double eps) {
  using namespace tsss;
  core::EngineConfig config;
  config.tree.split = split;
  config.tree.max_entries = fanout;
  RunResult out;
  auto engine = core::SearchEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "config M=%zu split=%d failed: %s\n", fanout,
                 static_cast<int>(split), engine.status().ToString().c_str());
    std::exit(1);
  }

  const bench::Timer build_timer;
  if (bulk) {
    if (!(*engine)->BulkBuild(market).ok()) std::exit(1);
  } else {
    for (const auto& series : market) {
      if (!(*engine)->AddSeries(series.name, series.values).ok()) std::exit(1);
    }
  }
  out.build_seconds = build_timer.Seconds();

  std::uint64_t pages = 0;
  const bench::Timer query_timer;
  for (const auto& query : queries) {
    core::QueryStats stats;
    auto matches = (*engine)->RangeQuery(query, eps, core::TransformCost{}, &stats);
    if (!matches.ok()) std::exit(1);
    pages += stats.total_page_reads();
  }
  const double q = static_cast<double>(queries.size());
  out.query_ms = 1e3 * query_timer.Seconds() / q;
  out.pages = static_cast<double>(pages) / q;

  auto stats = (*engine)->tree().ComputeStats();
  if (!stats.ok()) std::exit(1);
  out.overlap = stats->total_overlap_volume;
  out.height = stats->height;
  out.nodes = stats->node_count;
  return out;
}

}  // namespace

namespace {

void AddRunRow(tsss::bench::JsonReport& report, const char* split,
               std::size_t fanout, const char* build, const RunResult& r) {
  report.AddRow()
      .Set("split", split)
      .Set("fanout", fanout)
      .Set("build", build)
      .Set("build_s", r.build_seconds)
      .Set("query_ms", r.query_ms)
      .Set("pages", r.pages)
      .Set("overlap", r.overlap)
      .Set("height", r.height)
      .Set("nodes", r.nodes);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsss;
  bench::BenchEnv env = bench::GetBenchEnv();
  // Incremental insertion of >100k windows is the slow path under test;
  // default to a leaner corpus unless the caller overrides.
  if (std::getenv("TSSS_COMPANIES") == nullptr && !env.full) env.companies = 60;
  const auto market = bench::MakeMarket(env);
  const auto queries = bench::MakeQueries(market, env.queries, 128);
  const double eps = 0.5;

  bench::JsonReport report("ablation_tree", env);
  report.meta().Set("eps", eps);

  std::printf("# Ablation A4: R-tree construction choices (eps = %.2f)\n", eps);
  std::printf("# dataset: %zu companies x %zu values\n\n", env.companies,
              env.values);
  std::printf("%-11s %-4s %-12s %10s %10s %10s %10s %8s %8s\n", "split", "M",
              "build", "build_s", "query_ms", "pages", "overlap", "height",
              "nodes");

  for (const auto split :
       {index::SplitAlgorithm::kLinear, index::SplitAlgorithm::kQuadratic,
        index::SplitAlgorithm::kRStar}) {
    for (const bool bulk : {false, true}) {
      const RunResult r = RunConfig(market, queries, split, 20, bulk, eps);
      std::printf("%-11s %-4d %-12s %10.2f %10.3f %10.1f %10.3g %8zu %8zu\n",
                  std::string(index::SplitAlgorithmToString(split)).c_str(), 20,
                  bulk ? "str-bulk" : "incremental", r.build_seconds, r.query_ms,
                  r.pages, r.overlap, r.height, r.nodes);
      AddRunRow(report,
                std::string(index::SplitAlgorithmToString(split)).c_str(), 20,
                bulk ? "str-bulk" : "incremental", r);
    }
  }

  std::printf("\n# fanout sweep (R*, incremental):\n");
  std::printf("%-11s %-4s %-12s %10s %10s %10s %10s %8s %8s\n", "split", "M",
              "build", "build_s", "query_ms", "pages", "overlap", "height",
              "nodes");
  // 39 is the page-capacity limit for dim-6 internal nodes (M+1 must fit).
  for (const std::size_t fanout : {8u, 12u, 20u, 32u, 39u}) {
    const RunResult r = RunConfig(market, queries, index::SplitAlgorithm::kRStar,
                                  fanout, false, eps);
    std::printf("%-11s %-4zu %-12s %10.2f %10.3f %10.1f %10.3g %8zu %8zu\n",
                "rstar", fanout, "incremental", r.build_seconds, r.query_ms,
                r.pages, r.overlap, r.height, r.nodes);
    AddRunRow(report, "rstar", fanout, "incremental", r);
  }

  std::printf("\n# expected: R* splits beat Guttman on overlap and pages; STR\n"
              "# bulk load builds orders of magnitude faster with equal-or-\n"
              "# better query behaviour; M=20 (the paper's pick) is near the\n"
              "# flat part of the fanout curve.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
