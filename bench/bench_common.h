#ifndef TSSS_BENCH_BENCH_COMMON_H_
#define TSSS_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the figure-reproduction benchmarks.
//
// Scale control (environment variables):
//   TSSS_FULL=1        paper scale: 1000 companies x 650 values, 100 queries
//   TSSS_COMPANIES=N   override company count   (default 200)
//   TSSS_VALUES=N      override values/company  (default 650)
//   TSSS_QUERIES=N     override query count     (default 40)
//
// The defaults keep every benchmark binary under ~a minute on a laptop while
// preserving the paper's *shape* (who wins, by what factor, where crossovers
// fall); TSSS_FULL reproduces the paper's exact data volume (~650k values,
// seq-scan ~1300 pages/query).

// Machine-readable output: every benchmark accepts `--json-out FILE` and
// writes its result table as a BENCH JSON report (schema below) in addition
// to the human-readable text. run_benches.sh collects these into BENCH_*.json
// so successive runs produce a comparable perf trajectory.
//
//   {
//     "schema_version": 1,
//     "name": "<benchmark name>",
//     "env": {"companies": N, "values": N, "queries": N, "full": 0|1},
//     "meta": {...},              // free-form scalars (build time, config)
//     "rows": [{...}, ...]       // one object per result-table row
//   }

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "tsss/common/rng.h"
#include "tsss/core/engine.h"
#include "tsss/core/seq_scan.h"
#include "tsss/seq/stock_generator.h"

namespace tsss::bench {

struct BenchEnv {
  std::size_t companies = 200;
  std::size_t values = 650;
  std::size_t queries = 40;
  bool full = false;
};

inline std::size_t EnvSizeT(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long long parsed = std::atoll(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline BenchEnv GetBenchEnv() {
  BenchEnv env;
  const char* full = std::getenv("TSSS_FULL");
  if (full != nullptr && full[0] == '1') {
    env.full = true;
    env.companies = 1000;
    env.values = 650;
    env.queries = 100;
  }
  env.companies = EnvSizeT("TSSS_COMPANIES", env.companies);
  env.values = EnvSizeT("TSSS_VALUES", env.values);
  env.queries = EnvSizeT("TSSS_QUERIES", env.queries);
  return env;
}

inline std::vector<seq::TimeSeries> MakeMarket(const BenchEnv& env,
                                               std::uint64_t seed = 19990601) {
  seq::StockMarketConfig config;
  config.num_companies = env.companies;
  config.values_per_company = env.values;
  config.seed = seed;
  return seq::GenerateStockMarket(config);
}

/// Queries mimic the paper's setup: subsequences of the data itself, hit
/// with a random scale-shift (which the engine must undo) and 1% noise (so
/// the eps sweep is meaningful rather than all-or-nothing).
inline std::vector<geom::Vec> MakeQueries(
    const std::vector<seq::TimeSeries>& market, std::size_t count,
    std::size_t window, std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<geom::Vec> queries;
  queries.reserve(count);
  while (queries.size() < count) {
    const auto& series =
        market[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(market.size()) - 1))];
    if (series.values.size() < window) continue;
    const std::size_t offset = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(series.values.size() - window)));
    geom::Vec q(series.values.begin() + static_cast<std::ptrdiff_t>(offset),
                series.values.begin() + static_cast<std::ptrdiff_t>(offset + window));
    const double a = rng.Uniform(0.5, 2.0);
    const double b = rng.Uniform(-10.0, 10.0);
    for (double& x : q) {
      x = a * x + b;
      x *= 1.0 + rng.Uniform(-0.01, 0.01);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Builds an engine over `market` with BulkBuild and reports the build time.
inline std::unique_ptr<core::SearchEngine> BuildEngine(
    const core::EngineConfig& config, const std::vector<seq::TimeSeries>& market,
    double* build_seconds = nullptr) {
  auto engine = core::SearchEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  if (auto s = (*engine)->BulkBuild(market); !s.ok()) {
    std::fprintf(stderr, "bulk build failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  const auto stop = std::chrono::steady_clock::now();
  if (build_seconds != nullptr) {
    *build_seconds = std::chrono::duration<double>(stop - start).count();
  }
  return std::move(engine).value();
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const char* figure, const char* description,
                        const BenchEnv& env, std::size_t windows) {
  std::printf("# %s\n# %s\n", figure, description);
  std::printf("# dataset: %zu companies x %zu values (%zu total values, "
              "%zu indexed windows)%s\n",
              env.companies, env.values, env.companies * env.values, windows,
              env.full ? " [TSSS_FULL]" : "");
  std::printf("# queries: %zu\n", env.queries);
}

/// The eps sweep used by the figure benchmarks. Chosen so the largest eps
/// already returns a few percent of all windows (beyond that no index can
/// beat a scan - the answer itself is most of the data).
inline std::vector<double> EpsSweep() {
  return {0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0};
}

// --- machine-readable BENCH reports -----------------------------------------

/// Returns the value of `--json-out FILE` (or `--json-out=FILE`) from argv,
/// or "" when the flag is absent.
inline std::string JsonOutPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      return argv[i] + 11;
    }
  }
  return "";
}

/// One row/meta entry set: ordered key -> already-encoded JSON value.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, double v) {
    char buf[64];
    if (std::isfinite(v)) {
      std::snprintf(buf, sizeof(buf), "%.9g", v);
    } else {
      std::snprintf(buf, sizeof(buf), "null");
    }
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonObject& Set(const std::string& key, std::uint64_t v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& Set(const std::string& key, int v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& Set(const std::string& key, const std::string& v) {
    std::string escaped = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    escaped += '"';
    fields_.emplace_back(key, std::move(escaped));
    return *this;
  }
  JsonObject& Set(const std::string& key, const char* v) {
    return Set(key, std::string(v));
  }

  std::string Encode() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + fields_[i].first + "\":" + fields_[i].second;
    }
    out += "}";
    return out;
  }
  bool empty() const { return fields_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Accumulates the benchmark's result table and writes the BENCH JSON file.
class JsonReport {
 public:
  JsonReport(std::string name, const BenchEnv& env)
      : name_(std::move(name)), env_(env) {}

  /// Free-form scalar metadata (build seconds, tree height, config knobs).
  JsonObject& meta() { return meta_; }

  /// Appends and returns a fresh row; chain Set() calls on it.
  JsonObject& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string Encode() const {
    std::string out = "{\"schema_version\":1,\"name\":\"" + name_ + "\",";
    out += "\"env\":{\"companies\":" + std::to_string(env_.companies) +
           ",\"values\":" + std::to_string(env_.values) +
           ",\"queries\":" + std::to_string(env_.queries) +
           ",\"full\":" + std::string(env_.full ? "1" : "0") + "},";
    out += "\"meta\":" + meta_.Encode() + ",";
    out += "\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ",";
      out += rows_[i].Encode();
    }
    out += "]}\n";
    return out;
  }

  /// Writes the report to `path`; any I/O failure aborts the benchmark (a
  /// silently missing BENCH file would hide a broken perf trajectory).
  void WriteOrDie(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open json-out file '%s'\n", path.c_str());
      std::exit(1);
    }
    const std::string encoded = Encode();
    if (std::fwrite(encoded.data(), 1, encoded.size(), f) != encoded.size()) {
      std::fprintf(stderr, "short write to '%s'\n", path.c_str());
      std::fclose(f);
      std::exit(1);
    }
    std::fclose(f);
    std::printf("# json report written to %s\n", path.c_str());
  }

  /// Writes the report iff --json-out was passed on the command line.
  void MaybeWrite(int argc, char** argv) const {
    const std::string path = JsonOutPath(argc, argv);
    if (!path.empty()) WriteOrDie(path);
  }

 private:
  std::string name_;
  BenchEnv env_;
  JsonObject meta_;
  std::vector<JsonObject> rows_;
};

}  // namespace tsss::bench

#endif  // TSSS_BENCH_BENCH_COMMON_H_
