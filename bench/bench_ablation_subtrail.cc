// Ablation A9: sub-trail MBR indexing (the ST-index of Faloutsos et al. [2],
// which the paper builds on) vs one-point-per-window indexing.
//
// A trail of L consecutive windows becomes one leaf box, shrinking the index
// ~L-fold; a trail hit makes all L windows candidates. Small L = big index,
// precise candidates; large L = tiny index, more verification. This bench
// sweeps L and reports the index size, page reads (split into index/data),
// and CPU per query - the trade-off curve the original ST-index navigated.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);
  const double eps = 0.25;

  bench::JsonReport report("ablation_subtrail", env);
  report.meta().Set("eps", eps);

  std::printf("# Ablation A9: sub-trail length sweep (eps = %.2f)\n", eps);
  std::printf("# dataset: %zu companies x %zu values; window 128, DFT->6\n\n",
              env.companies, env.values);
  std::printf("%-8s %10s %10s %12s %12s %12s %12s %12s\n", "trail", "entries",
              "nodes", "cpu_ms", "index_pages", "data_pages", "candidates",
              "matches");

  for (const std::size_t trail : {0u, 5u, 10u, 25u, 50u, 100u}) {
    core::EngineConfig config;
    config.subtrail_len = trail;
    auto engine = bench::BuildEngine(config, market);
    const auto queries = bench::MakeQueries(market, env.queries, config.window);

    double cpu_seconds = 0.0;
    std::uint64_t index_pages = 0;
    std::uint64_t data_pages = 0;
    std::uint64_t candidates = 0;
    std::uint64_t matches_total = 0;
    for (const auto& query : queries) {
      core::QueryStats stats;
      const bench::Timer timer;
      auto matches = engine->RangeQuery(query, eps, core::TransformCost{}, &stats);
      cpu_seconds += timer.Seconds();
      if (!matches.ok()) return 1;
      index_pages += stats.index_page_reads;
      data_pages += stats.data_page_reads;
      candidates += stats.candidates;
      matches_total += stats.matches;
    }
    auto tree_stats = engine->tree().ComputeStats();
    if (!tree_stats.ok()) return 1;

    const double q = static_cast<double>(queries.size());
    std::printf("%-8zu %10zu %10zu %12.3f %12.1f %12.1f %12.1f %12.1f\n", trail,
                engine->tree().size(), tree_stats->node_count,
                1e3 * cpu_seconds / q, static_cast<double>(index_pages) / q,
                static_cast<double>(data_pages) / q,
                static_cast<double>(candidates) / q,
                static_cast<double>(matches_total) / q);
    report.AddRow()
        .Set("trail", trail)
        .Set("entries", engine->tree().size())
        .Set("nodes", tree_stats->node_count)
        .Set("cpu_ms", 1e3 * cpu_seconds / q)
        .Set("index_pages", static_cast<double>(index_pages) / q)
        .Set("data_pages", static_cast<double>(data_pages) / q)
        .Set("candidates", static_cast<double>(candidates) / q)
        .Set("matches", static_cast<double>(matches_total) / q);
  }
  std::printf("\n# expected: index pages fall ~L-fold with trail length while\n"
              "# data pages (verification) grow; total page reads bottom out\n"
              "# around L ~ 25-50, far below both the point index and the\n"
              "# sequential scan - the regime the paper's Figure 5 lives in.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
