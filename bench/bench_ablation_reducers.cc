// Ablation A3: choice of (linear, contractive) dimension reducer at equal
// reduced dimensionality. The paper uses DFT following [1, 2] and cites
// wavelet reduction [14]; this bench compares DFT vs PAA vs Haar at dim 6 on
// the same data and queries. The quality metric is pruning precision: how
// few candidates survive for the same guaranteed-complete answer set.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);
  bench::JsonReport report("ablation_reducers", env);

  std::printf("# Ablation A3: reducer family at reduced dim 6, window 128\n");
  std::printf("# dataset: %zu companies x %zu values\n", env.companies,
              env.values);
  std::printf("\n%-10s %-8s %12s %12s %12s %12s %12s\n", "reducer", "eps",
              "cpu_ms", "pages", "candidates", "matches", "precision");

  const reduce::ReducerKind kinds[] = {reduce::ReducerKind::kDft,
                                       reduce::ReducerKind::kPaa,
                                       reduce::ReducerKind::kHaar};
  for (const reduce::ReducerKind kind : kinds) {
    core::EngineConfig config;
    config.reducer = kind;
    config.reduced_dim = 6;
    auto engine = bench::BuildEngine(config, market);
    const auto queries = bench::MakeQueries(market, env.queries, config.window);

    for (const double eps : {0.1, 0.5, 1.0}) {
      double cpu_seconds = 0.0;
      std::uint64_t pages = 0;
      std::uint64_t candidates = 0;
      std::uint64_t matches_total = 0;
      for (const auto& query : queries) {
        core::QueryStats stats;
        const bench::Timer timer;
        auto matches =
            engine->RangeQuery(query, eps, core::TransformCost{}, &stats);
        cpu_seconds += timer.Seconds();
        if (!matches.ok()) return 1;
        pages += stats.total_page_reads();
        candidates += stats.candidates;
        matches_total += stats.matches;
      }
      const double q = static_cast<double>(queries.size());
      const double precision =
          candidates > 0 ? static_cast<double>(matches_total) /
                               static_cast<double>(candidates)
                         : 1.0;
      std::printf("%-10s %-8.2f %12.3f %12.1f %12.1f %12.1f %11.1f%%\n",
                  std::string(reduce::ReducerKindToString(kind)).c_str(), eps,
                  1e3 * cpu_seconds / q, static_cast<double>(pages) / q,
                  static_cast<double>(candidates) / q,
                  static_cast<double>(matches_total) / q, 100.0 * precision);
      report.AddRow()
          .Set("reducer", std::string(reduce::ReducerKindToString(kind)))
          .Set("eps", eps)
          .Set("cpu_ms", 1e3 * cpu_seconds / q)
          .Set("pages", static_cast<double>(pages) / q)
          .Set("candidates", static_cast<double>(candidates) / q)
          .Set("matches", static_cast<double>(matches_total) / q)
          .Set("precision_pct", 100.0 * precision);
    }
  }
  std::printf("\n# expected: all reducers return identical match counts (the\n"
              "# pipeline is exact for every linear contraction); they differ\n"
              "# only in pruning precision and per-query cost.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
