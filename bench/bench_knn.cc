// Ablation A6: k-nearest-neighbour search under the scale-shift distance
// (Corollary 1 - the paper defines the nearest neighbour via LLD but defers
// the algorithm; we implement GEMINI-style multi-step k-NN on the index and
// compare it against the full-scan k-NN).

#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);

  core::EngineConfig config;
  auto engine = bench::BuildEngine(config, market);
  const auto queries = bench::MakeQueries(market, env.queries, config.window);
  core::SequentialScanner scanner(&engine->dataset(), config.window);

  bench::PrintHeader("Ablation A6: k-NN under scale-shift distance",
                     "multi-step tree k-NN vs full-scan k-NN", env,
                     engine->num_indexed_windows());

  bench::JsonReport report("knn", env);

  std::printf("\n%-6s %12s %12s %14s %14s %12s\n", "k", "scan_ms", "tree_ms",
              "tree_pages", "verified", "agree");
  for (const std::size_t k : {1u, 5u, 10u, 50u}) {
    const std::size_t scan_queries = std::min<std::size_t>(queries.size(), 8);
    double scan_seconds = 0.0;
    std::vector<std::vector<core::Match>> scan_results;
    {
      const bench::Timer timer;
      for (std::size_t q = 0; q < scan_queries; ++q) {
        auto result = scanner.Knn(queries[q], k);
        if (!result.ok()) return 1;
        scan_results.push_back(std::move(result).value());
      }
      scan_seconds = timer.Seconds() / static_cast<double>(scan_queries);
    }

    double tree_seconds = 0.0;
    std::uint64_t pages = 0;
    std::uint64_t verified = 0;
    bool all_agree = true;
    {
      const bench::Timer timer;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        core::QueryStats stats;
        auto result = engine->Knn(queries[q], k, core::TransformCost{}, &stats);
        if (!result.ok()) return 1;
        pages += stats.total_page_reads();
        verified += stats.candidates;
        if (q < scan_results.size()) {
          const auto& expected = scan_results[q];
          if (result->size() != expected.size()) {
            all_agree = false;
          } else {
            for (std::size_t i = 0; i < result->size(); ++i) {
              if (std::fabs((*result)[i].distance - expected[i].distance) >
                  1e-6) {
                all_agree = false;
              }
            }
          }
        }
      }
      tree_seconds = timer.Seconds() / static_cast<double>(queries.size());
    }

    const double q = static_cast<double>(queries.size());
    std::printf("%-6zu %12.3f %12.3f %14.1f %14.1f %12s\n", k,
                1e3 * scan_seconds, 1e3 * tree_seconds,
                static_cast<double>(pages) / q, static_cast<double>(verified) / q,
                all_agree ? "yes" : "NO");
    report.AddRow()
        .Set("k", k)
        .Set("scan_ms", 1e3 * scan_seconds)
        .Set("tree_ms", 1e3 * tree_seconds)
        .Set("tree_pages", static_cast<double>(pages) / q)
        .Set("verified", static_cast<double>(verified) / q)
        .Set("agree", all_agree ? 1 : 0);
  }
  std::printf("\n# expected: identical answers; the multi-step search verifies\n"
              "# a small fraction of all windows and beats the scan for\n"
              "# small k.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
