// Ablation A10: long queries (paper, Section 7, following [2]).
//
// Queries longer than the indexed window are cut into p = floor(|Q|/n)
// disjoint pieces, each searched with eps/sqrt(p); candidates are verified
// against the full query. This bench sweeps the query length and compares
// the partitioned index search against a brute-force scan over full-length
// windows, checking both cost and (by construction guaranteed) completeness.

#include <set>

#include "bench_common.h"

namespace {

/// Brute-force long search: exact distance on every full-length window.
std::size_t BruteLongSearch(tsss::seq::Dataset& ds,
                            std::span<const double> query, double eps) {
  const tsss::core::QueryContext ctx(query);
  std::size_t matches = 0;
  for (tsss::storage::SeriesId s = 0; s < ds.size(); ++s) {
    auto values = ds.Values(s);
    if (!values.ok()) std::exit(1);
    if (values->size() < query.size()) continue;
    for (std::size_t off = 0; off + query.size() <= values->size(); ++off) {
      if (ctx.Distance(values->subspan(off, query.size())) <= eps) ++matches;
    }
  }
  return matches;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsss;
  bench::BenchEnv env = bench::GetBenchEnv();
  if (std::getenv("TSSS_COMPANIES") == nullptr && !env.full) env.companies = 100;
  const auto market = bench::MakeMarket(env);

  core::EngineConfig config;  // window 128
  auto engine = bench::BuildEngine(config, market);

  bench::JsonReport report("long_query", env);
  report.meta().Set("window", config.window);

  std::printf("# Ablation A10: long-query partitioning (Section 7)\n");
  std::printf("# dataset: %zu companies x %zu values; index window %zu\n\n",
              env.companies, env.values, config.window);
  std::printf("%-8s %-8s %-10s %12s %12s %12s %12s %10s\n", "len", "pieces",
              "eps", "tree_ms", "brute_ms", "pages", "candidates", "matches");

  Rng rng(505);
  for (const std::size_t len : {256u, 384u, 512u}) {
    // Queries drawn from the data, scale-shifted.
    std::vector<geom::Vec> queries;
    for (std::size_t q = 0; q < std::min<std::size_t>(env.queries, 15); ++q) {
      const auto& series = market[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(market.size()) - 1))];
      if (series.values.size() < len) continue;
      const std::size_t off = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(series.values.size() - len)));
      geom::Vec query(series.values.begin() + static_cast<std::ptrdiff_t>(off),
                      series.values.begin() + static_cast<std::ptrdiff_t>(off + len));
      const double a = rng.Uniform(0.5, 2.0);
      for (double& x : query) x = a * x + 3.0;
      queries.push_back(std::move(query));
    }
    const double eps = 1.0;

    double tree_seconds = 0.0;
    std::uint64_t pages = 0;
    std::uint64_t candidates = 0;
    std::size_t tree_matches = 0;
    for (const auto& query : queries) {
      core::QueryStats stats;
      const bench::Timer timer;
      auto matches = engine->LongRangeQuery(query, eps, core::TransformCost{}, &stats);
      tree_seconds += timer.Seconds();
      if (!matches.ok()) {
        std::fprintf(stderr, "%s\n", matches.status().ToString().c_str());
        return 1;
      }
      pages += stats.total_page_reads();
      candidates += stats.candidates;
      tree_matches += matches->size();
    }

    double brute_seconds = 0.0;
    std::size_t brute_matches = 0;
    {
      const bench::Timer timer;
      for (const auto& query : queries) {
        brute_matches += BruteLongSearch(engine->dataset(), query, eps);
      }
      brute_seconds = timer.Seconds();
    }
    if (brute_matches != tree_matches) {
      std::fprintf(stderr, "MISMATCH: tree %zu vs brute %zu matches\n",
                   tree_matches, brute_matches);
      return 1;
    }

    const double q = static_cast<double>(queries.size());
    std::printf("%-8zu %-8zu %-10.2f %12.3f %12.3f %12.1f %12.1f %10.1f\n", len,
                len / config.window, eps, 1e3 * tree_seconds / q,
                1e3 * brute_seconds / q, static_cast<double>(pages) / q,
                static_cast<double>(candidates) / q,
                static_cast<double>(tree_matches) / q);
    report.AddRow()
        .Set("len", len)
        .Set("pieces", static_cast<std::uint64_t>(len / config.window))
        .Set("eps", eps)
        .Set("tree_ms", 1e3 * tree_seconds / q)
        .Set("brute_ms", 1e3 * brute_seconds / q)
        .Set("pages", static_cast<double>(pages) / q)
        .Set("candidates", static_cast<double>(candidates) / q)
        .Set("matches", static_cast<double>(tree_matches) / q);
  }
  std::printf("\n# matches are verified identical to the brute-force long scan\n"
              "# (no false dismissals through the eps/sqrt(p) piece bound).\n"
              "# note the cost trend: each extra piece is one more index probe\n"
              "# at a tighter bound, while the brute scan gets *cheaper* with\n"
              "# length (fewer window positions) - partitioning pays off for\n"
              "# selective pieces, not asymptotically in query length.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
