// Ablation A5: scalability in database size. The paper's requirement 1
// (Section 3) motivates the index with "the size of the time sequence
// database is very large in real applications"; this bench grows the market
// from 50 to TSSS_COMPANIES companies and tracks how both methods scale.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const double eps = 0.25;

  bench::JsonReport report("scaling", env);
  report.meta().Set("eps", eps);

  std::printf("# Ablation A5: scaling with database size (eps = %.2f)\n", eps);
  std::printf("\n%-10s %10s %12s %12s %12s %14s %14s\n", "companies", "values",
              "windows", "scan_ms", "tree_ms", "scan_pages", "tree_pages");

  std::vector<std::size_t> sizes;
  for (std::size_t c = 50; c < env.companies; c *= 2) sizes.push_back(c);
  sizes.push_back(env.companies);

  for (const std::size_t companies : sizes) {
    bench::BenchEnv sub = env;
    sub.companies = companies;
    const auto market = bench::MakeMarket(sub);

    core::EngineConfig config;
    auto engine = bench::BuildEngine(config, market);
    const auto queries = bench::MakeQueries(market, env.queries, config.window);
    core::SequentialScanner scanner(&engine->dataset(), config.window);

    const std::size_t scan_queries = std::min<std::size_t>(queries.size(), 8);
    const bench::Timer scan_timer;
    for (std::size_t q = 0; q < scan_queries; ++q) {
      if (!scanner.RangeQuery(queries[q], eps).ok()) return 1;
    }
    const double scan_ms =
        1e3 * scan_timer.Seconds() / static_cast<double>(scan_queries);

    std::uint64_t pages = 0;
    const bench::Timer tree_timer;
    for (const auto& query : queries) {
      core::QueryStats stats;
      if (!engine->RangeQuery(query, eps, core::TransformCost{}, &stats).ok()) {
        return 1;
      }
      pages += stats.total_page_reads();
    }
    const double tree_ms =
        1e3 * tree_timer.Seconds() / static_cast<double>(queries.size());

    std::printf("%-10zu %10zu %12zu %12.3f %12.3f %14zu %14.1f\n", companies,
                companies * sub.values, engine->num_indexed_windows(), scan_ms,
                tree_ms, engine->dataset().store().TotalPages(),
                static_cast<double>(pages) / static_cast<double>(queries.size()));
    report.AddRow()
        .Set("companies", companies)
        .Set("values", static_cast<std::uint64_t>(companies * sub.values))
        .Set("windows", engine->num_indexed_windows())
        .Set("scan_ms", scan_ms)
        .Set("tree_ms", tree_ms)
        .Set("scan_pages", engine->dataset().store().TotalPages())
        .Set("tree_pages", static_cast<double>(pages) /
                               static_cast<double>(queries.size()));
  }
  std::printf("\n# expected: scan CPU and pages grow linearly with the data.\n"
              "# With data-drawn queries the answer set also grows linearly,\n"
              "# so tree CPU keeps a constant-factor advantage; for fixed-size\n"
              "# answers (small eps) the tree's growth is sublinear.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
