// Ablation A1: why the Bounding-Spheres heuristic loses (paper, Section 7).
//
// The paper explains the surprise via Katayama & Satoh's SR-tree
// observation: R*-tree MBRs have long diagonals but small volume, i.e. they
// are long and thin. Then (a) the outer sphere is far larger than the box,
// so lines that miss the box still hit the outer sphere, and (b) the inner
// sphere is tiny, so lines that hit the box still miss the inner sphere.
// Either way the slab test runs anyway and the sphere tests are pure
// overhead.
//
// This bench measures exactly that: the shape statistics of the tree's MBRs,
// the fraction of penetration decisions the spheres actually short-circuit,
// and the per-decision CPU cost of each strategy.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);

  core::EngineConfig config;
  auto engine = bench::BuildEngine(config, market);
  const auto queries = bench::MakeQueries(market, env.queries, config.window);

  bench::PrintHeader("Ablation A1: bounding spheres vs entering/exiting points",
                     "sphere short-circuit rates and MBR shape", env,
                     engine->num_indexed_windows());
  bench::JsonReport report("ablation_spheres", env);

  // MBR shape: the 'long thin boxes' measurement.
  auto stats = engine->tree().ComputeStats();
  if (!stats.ok()) return 1;
  report.meta()
      .Set("avg_aspect_ratio", stats->avg_aspect_ratio)
      .Set("avg_diag_to_min_side", stats->avg_diag_to_min_side);
  std::printf("\n# MBR shape (all internal-node children):\n");
  std::printf("#   avg longest/shortest side ratio : %8.1f\n",
              stats->avg_aspect_ratio);
  std::printf("#   avg diagonal/shortest side      : %8.1f\n",
              stats->avg_diag_to_min_side);
  std::printf("#   (a cube would score 1.0 / 2.45 in 6-d; large values mean\n"
              "#    the outer sphere over-covers and the inner under-covers)\n");

  std::printf("\n%-8s %10s %12s %12s %12s %10s\n", "eps", "tests",
              "outer_rej%", "inner_acc%", "slab_runs%", "saved%");
  for (const double eps : bench::EpsSweep()) {
    geom::PenetrationStats pen;
    engine->set_prune_strategy(geom::PruneStrategy::kBoundingSpheres);
    for (const auto& query : queries) {
      core::QueryStats qs;
      auto matches = engine->RangeQuery(query, eps, core::TransformCost{}, &qs);
      if (!matches.ok()) return 1;
      pen.tests += qs.penetration.tests;
      pen.outer_rejects += qs.penetration.outer_rejects;
      pen.inner_accepts += qs.penetration.inner_accepts;
      pen.slab_tests += qs.penetration.slab_tests;
    }
    const double tests = static_cast<double>(pen.tests);
    const double short_circuited =
        static_cast<double>(pen.outer_rejects + pen.inner_accepts);
    std::printf("%-8.2f %10llu %11.1f%% %11.1f%% %11.1f%% %9.1f%%\n", eps,
                static_cast<unsigned long long>(pen.tests),
                100.0 * static_cast<double>(pen.outer_rejects) / tests,
                100.0 * static_cast<double>(pen.inner_accepts) / tests,
                100.0 * static_cast<double>(pen.slab_tests) / tests,
                100.0 * short_circuited / tests);
    report.AddRow()
        .Set("eps", eps)
        .Set("tests", pen.tests)
        .Set("outer_reject_pct",
             100.0 * static_cast<double>(pen.outer_rejects) / tests)
        .Set("inner_accept_pct",
             100.0 * static_cast<double>(pen.inner_accepts) / tests)
        .Set("slab_run_pct",
             100.0 * static_cast<double>(pen.slab_tests) / tests)
        .Set("saved_pct", 100.0 * short_circuited / tests);
  }

  // Micro-cost of one decision per strategy, on the tree's real boxes.
  std::printf("\n# per-decision CPU cost (ns), measured on the tree's own "
              "boxes against %zu query lines:\n",
              queries.size());
  std::vector<geom::Mbr> boxes;
  if (!engine->tree()
           .VisitNodes([&](const index::Node& node, storage::PageId) {
             if (!node.is_leaf()) {
               for (const auto& e : node.entries) boxes.push_back(e.mbr);
             }
           })
           .ok()) {
    return 1;
  }
  std::vector<geom::Line> lines;
  lines.reserve(queries.size());
  for (const auto& q : queries) lines.push_back(engine->ReducedQueryLine(q));

  for (geom::PruneStrategy strategy :
       {geom::PruneStrategy::kEepOnly, geom::PruneStrategy::kBoundingSpheres,
        geom::PruneStrategy::kExactDistance}) {
    std::size_t visits = 0;
    const bench::Timer timer;
    for (const auto& line : lines) {
      for (const auto& box : boxes) {
        if (geom::ShouldVisit(line, box, 0.5, strategy, nullptr)) ++visits;
      }
    }
    const double total = timer.Seconds();
    const double per_test =
        1e9 * total / static_cast<double>(lines.size() * boxes.size());
    std::printf("#   %-10s %8.1f ns/test  (%zu/%zu admitted)\n",
                std::string(geom::PruneStrategyToString(strategy)).c_str(),
                per_test, visits, lines.size() * boxes.size());
    report.meta().Set(
        std::string("ns_per_test_") +
            std::string(geom::PruneStrategyToString(strategy)),
        per_test);
  }
  std::printf("\n# expected: sphere short-circuit rate is low and the sphere\n"
              "# test costs as much as the slab test it tries to avoid.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
