// Ablation A7: micro-benchmarks (google-benchmark) of the geometric
// primitives that dominate the search inner loops: SE-transform, DFT
// reduction, PLD, LLD, closed-form alignment, and the three node-pruning
// tests on realistic long-thin boxes.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "tsss/common/rng.h"
#include "tsss/core/similarity.h"
#include "tsss/geom/line.h"
#include "tsss/geom/penetration.h"
#include "tsss/geom/scale_shift.h"
#include "tsss/geom/se_transform.h"
#include "tsss/reduce/dft.h"

namespace {

using tsss::Rng;
using tsss::geom::Line;
using tsss::geom::Mbr;
using tsss::geom::Vec;

Vec RandomVec(Rng& rng, std::size_t n, double lo = -10, double hi = 10) {
  Vec v(n);
  for (auto& x : v) x = rng.Uniform(lo, hi);
  return v;
}

/// A long-thin box like the R*-tree produces (paper, Section 7): one long
/// axis, the rest short.
Mbr LongThinBox(Rng& rng, std::size_t dim) {
  Vec lo(dim), hi(dim);
  const std::size_t long_axis =
      static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(dim) - 1));
  for (std::size_t d = 0; d < dim; ++d) {
    lo[d] = rng.Uniform(-5, 5);
    hi[d] = lo[d] + (d == long_axis ? rng.Uniform(5.0, 20.0)
                                    : rng.Uniform(0.01, 0.2));
  }
  return Mbr::FromCorners(std::move(lo), std::move(hi));
}

void BM_SeTransform(benchmark::State& state) {
  Rng rng(1);
  const Vec v = RandomVec(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsss::geom::SeTransform(v));
  }
}
BENCHMARK(BM_SeTransform)->Arg(32)->Arg(128)->Arg(512);

void BM_DftReduce(benchmark::State& state) {
  Rng rng(2);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const tsss::reduce::DftReducer reducer(n, 3, 1);
  const Vec v = RandomVec(rng, n);
  Vec out(6);
  for (auto _ : state) {
    reducer.Reduce(v, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DftReduce)->Arg(32)->Arg(128)->Arg(512);

void BM_Pld(benchmark::State& state) {
  Rng rng(3);
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const Line line{RandomVec(rng, dim), RandomVec(rng, dim, -1, 1)};
  const Vec q = RandomVec(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsss::geom::Pld(q, line));
  }
}
BENCHMARK(BM_Pld)->Arg(6)->Arg(16)->Arg(128);

void BM_Lld(benchmark::State& state) {
  Rng rng(4);
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const Line a = Line::ScalingLine(RandomVec(rng, dim));
  const Line b = Line::ShiftingLine(RandomVec(rng, dim));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsss::geom::Lld(a, b));
  }
}
BENCHMARK(BM_Lld)->Arg(6)->Arg(128);

void BM_AlignScaleShiftClosedForm(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const tsss::core::QueryContext ctx(RandomVec(rng, n));
  const Vec window = RandomVec(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Align(window).distance);
  }
}
BENCHMARK(BM_AlignScaleShiftClosedForm)->Arg(32)->Arg(128)->Arg(512);

template <tsss::geom::PruneStrategy kStrategy>
void BM_ShouldVisit(benchmark::State& state) {
  Rng rng(6);
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  std::vector<Mbr> boxes;
  for (int i = 0; i < 64; ++i) boxes.push_back(LongThinBox(rng, dim));
  const Line line{Vec(dim, 0.0), RandomVec(rng, dim, -1, 1)};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tsss::geom::ShouldVisit(line, boxes[i++ & 63], 0.5, kStrategy, nullptr));
  }
}
BENCHMARK(BM_ShouldVisit<tsss::geom::PruneStrategy::kEepOnly>)->Arg(6)->Arg(16);
BENCHMARK(BM_ShouldVisit<tsss::geom::PruneStrategy::kBoundingSpheres>)
    ->Arg(6)
    ->Arg(16);
BENCHMARK(BM_ShouldVisit<tsss::geom::PruneStrategy::kExactDistance>)
    ->Arg(6)
    ->Arg(16);

/// Console reporter that additionally collects every run into the BENCH JSON
/// report (one row per benchmark/arg combination).
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCollectingReporter(tsss::bench::JsonReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_->AddRow()
          .Set("name", run.benchmark_name())
          .Set("iterations", static_cast<std::uint64_t>(run.iterations))
          .Set("real_ns", run.GetAdjustedRealTime())
          .Set("cpu_ns", run.GetAdjustedCPUTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  tsss::bench::JsonReport* report_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): benchmark::Initialize() aborts on
// flags it does not know, so --json-out is extracted first.
int main(int argc, char** argv) {
  const std::string json_out = tsss::bench::JsonOutPath(argc, argv);
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      ++i;  // skip the flag's value too
      continue;
    }
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) continue;
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) return 1;

  tsss::bench::JsonReport report("geom_micro", tsss::bench::GetBenchEnv());
  JsonCollectingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_out.empty()) report.WriteOrDie(json_out);
  return 0;
}
