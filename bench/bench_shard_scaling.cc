// Shard scaling: closed-loop range-query throughput over a ShardedEngine as
// the shard count sweeps {1, 2, 4} on the same workload.
//
// A fixed pool of client threads each runs one query at a time against the
// scatter-gather facade (whose internal fan-out pool has one worker per
// shard), for a fixed wall-time window per sweep point. With S shards each
// sub-query touches ~1/S of the windows through its own R-tree and private
// buffer pool, so on multi-core hardware qps should scale toward linear (the
// CI acceptance target is >=1.5x at 4 shards vs 1); on a single core the
// sweep still verifies the fan-out path and reports per-shard pool hit
// rates. `total_matches` is the summed answer size over one deterministic
// pass of the workload — identical across shard counts because sharded
// answers are bit-identical to the single-engine oracle, which makes it a
// count-class gate for bench_diff.
//
// Extra environment knobs on top of bench_common.h:
//   TSSS_SERVICE_SECONDS=S  wall time per sweep point (default 2)
//   TSSS_CLIENTS=N          client-thread count (default 8, fixed across the
//                           sweep so the offered load is constant)

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "tsss/shard/sharded_engine.h"

namespace {

double PercentileUs(std::vector<double>* latencies_us, double q) {
  if (latencies_us->empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies_us->size() - 1));
  std::nth_element(latencies_us->begin(),
                   latencies_us->begin() + static_cast<std::ptrdiff_t>(rank),
                   latencies_us->end());
  return (*latencies_us)[rank];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const double seconds =
      static_cast<double>(bench::EnvSizeT("TSSS_SERVICE_SECONDS", 2));
  const std::size_t clients = bench::EnvSizeT("TSSS_CLIENTS", 8);
  const double eps = 0.25;

  bench::JsonReport report("shard_scaling", env);
  report.meta()
      .Set("eps", eps)
      .Set("seconds_per_point", seconds)
      .Set("scheme", "hash");

  const auto market = bench::MakeMarket(env);
  const core::EngineConfig engine_config;
  const auto queries =
      bench::MakeQueries(market, env.queries, engine_config.window);

  std::fprintf(stderr,
               "# shard scaling: %zu series, eps = %.2f, %zu clients, %.0fs "
               "per sweep point\n",
               market.size(), eps, clients, seconds);

  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    shard::ShardedEngineConfig config;
    config.engine = engine_config;
    config.num_shards = shards;
    config.fanout_workers = shards;  // one fan-out worker per shard
    auto engine = shard::ShardedEngine::Create(config);
    if (!engine.ok()) {
      std::fprintf(stderr, "sharded engine creation failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    double build_seconds = 0.0;
    {
      const bench::Timer timer;
      if (auto s = (*engine)->BulkBuild(market); !s.ok()) {
        std::fprintf(stderr, "bulk build failed: %s\n", s.ToString().c_str());
        return 1;
      }
      build_seconds = timer.Seconds();
    }

    // One deterministic warm-up pass doubles as the bit-identity gate: the
    // summed answer size must not depend on the shard count.
    std::uint64_t total_matches = 0;
    for (const geom::Vec& query : queries) {
      auto matches = (*engine)->RangeQuery(query, eps);
      if (!matches.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     matches.status().ToString().c_str());
        return 1;
      }
      total_matches += matches->size();
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    std::vector<std::vector<double>> client_latencies_us(clients);
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        std::size_t next = c;  // stagger the query mix across clients
        while (!stop.load(std::memory_order_relaxed)) {
          const bench::Timer timer;
          auto matches = (*engine)->RangeQuery(queries[next++ % queries.size()],
                                               eps);
          if (!matches.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         matches.status().ToString().c_str());
            std::exit(1);
          }
          client_latencies_us[c].push_back(1e6 * timer.Seconds());
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    const bench::Timer wall;
    while (wall.Seconds() < seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : client_threads) t.join();
    const double elapsed = wall.Seconds();

    std::vector<double> all_latencies_us;
    for (const auto& per_client : client_latencies_us) {
      all_latencies_us.insert(all_latencies_us.end(), per_client.begin(),
                              per_client.end());
    }
    const double p50_us = PercentileUs(&all_latencies_us, 0.50);
    const double p99_us = PercentileUs(&all_latencies_us, 0.99);
    const double qps = static_cast<double>(completed.load()) / elapsed;

    std::printf(
        "{\"bench\":\"shard_scaling\",\"shards\":%u,\"clients\":%zu,"
        "\"seconds\":%.2f,\"queries\":%llu,\"qps\":%.1f,"
        "\"client_p50_ms\":%.3f,\"client_p99_ms\":%.3f,"
        "\"total_matches\":%llu,\"build_s\":%.3f",
        shards, clients, elapsed,
        static_cast<unsigned long long>(completed.load()), qps, p50_us / 1e3,
        p99_us / 1e3, static_cast<unsigned long long>(total_matches),
        build_seconds);
    auto& row = report.AddRow();
    row.Set("shards", static_cast<std::uint64_t>(shards))
        .Set("clients", static_cast<std::uint64_t>(clients))
        .Set("indexed_windows", (*engine)->num_indexed_windows())
        .Set("total_matches", total_matches)
        .Set("seconds", elapsed)
        .Set("queries", completed.load())
        .Set("qps", qps)
        .Set("client_p50_ms", p50_us / 1e3)
        .Set("client_p99_ms", p99_us / 1e3)
        .Set("build_s", build_seconds);
    for (const shard::ShardInfo& info : (*engine)->ShardInfos()) {
      char key[48];
      std::snprintf(key, sizeof(key), "pool_hit_ratio_s%u", info.shard);
      std::printf(",\"%s\":%.4f", key, info.pool_hit_rate);
      row.Set(key, info.pool_hit_rate);
    }
    std::printf("}\n");
    std::fflush(stdout);
  }
  report.MaybeWrite(argc, argv);
  return 0;
}
