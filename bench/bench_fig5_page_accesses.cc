// Figure 5 reproduction: average number of page accesses per query vs error
// bound eps for the paper's three experiment sets.
//
// Accounting model (paper, Section 7): 4 KiB pages; the sequential scan
// reads every data page each query - (values x 8 bytes) / 4 KiB, ~1300 pages
// at the paper's 650k-value scale; the tree methods read one page per R-tree
// node visited plus the data pages needed to verify candidates. Queries
// start with a cold buffer pool.
//
// Expected shape: the tree's page accesses are far below the scan's flat
// line over the whole eps range, with a ~1000x ratio at eps = 0.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);

  core::EngineConfig config;  // paper defaults
  auto engine = bench::BuildEngine(config, market);
  // The paper follows the ST-index [2], which stores sub-trail MBRs rather
  // than one point per window; build that variant too (L = 10).
  core::EngineConfig trail_config;
  trail_config.subtrail_len = 10;
  auto trail_engine = bench::BuildEngine(trail_config, market);
  const auto queries = bench::MakeQueries(market, env.queries, config.window);

  bench::PrintHeader(
      "Figure 5: Number of Page Accesses vs Error Value of the 3 sets",
      "average page reads per query (index pages + data pages)", env,
      engine->num_indexed_windows());

  // Set 1: the scan always reads every occupied data page.
  const double scan_pages =
      static_cast<double>(engine->dataset().store().TotalPages());
  std::printf("# sequential scan: %.0f pages per query at every eps "
              "(total values x 8B / 4KiB)\n",
              scan_pages);

  bench::JsonReport report("fig5_page_accesses", env);
  report.meta()
      .Set("scan_pages", scan_pages)
      .Set("indexed_windows", engine->num_indexed_windows())
      .Set("pool_capacity", engine->pool().capacity());

  std::printf("\n%-8s %14s %14s %14s %12s %12s %14s\n", "eps", "seqscan_pages",
              "eep_pages", "spheres_pages", "eep_index", "eep_data",
              "subtrail_pages");
  double eep_pages_at_zero = scan_pages;
  double trail_pages_at_zero = scan_pages;
  for (const double eps : bench::EpsSweep()) {
    double pages[2] = {0.0, 0.0};
    double index_pages_eep = 0.0;
    double data_pages_eep = 0.0;
    const geom::PruneStrategy strategies[2] = {
        geom::PruneStrategy::kEepOnly, geom::PruneStrategy::kBoundingSpheres};
    for (int s = 0; s < 2; ++s) {
      engine->set_prune_strategy(strategies[s]);
      std::uint64_t total = 0;
      std::uint64_t index_total = 0;
      std::uint64_t data_total = 0;
      for (const auto& query : queries) {
        core::QueryStats stats;
        auto matches = engine->RangeQuery(query, eps, core::TransformCost{}, &stats);
        if (!matches.ok()) return 1;
        total += stats.total_page_reads();
        index_total += stats.index_page_reads;
        data_total += stats.data_page_reads;
      }
      pages[s] = static_cast<double>(total) / static_cast<double>(queries.size());
      if (s == 0) {
        index_pages_eep =
            static_cast<double>(index_total) / static_cast<double>(queries.size());
        data_pages_eep =
            static_cast<double>(data_total) / static_cast<double>(queries.size());
      }
    }
    std::uint64_t trail_total = 0;
    for (const auto& query : queries) {
      core::QueryStats stats;
      auto matches =
          trail_engine->RangeQuery(query, eps, core::TransformCost{}, &stats);
      if (!matches.ok()) return 1;
      trail_total += stats.total_page_reads();
    }
    const double trail_pages =
        static_cast<double>(trail_total) / static_cast<double>(queries.size());
    if (eps == 0.0) {
      eep_pages_at_zero = pages[0];
      trail_pages_at_zero = trail_pages;
    }
    std::printf("%-8.2f %14.0f %14.1f %14.1f %12.1f %12.1f %14.1f\n", eps,
                scan_pages, pages[0], pages[1], index_pages_eep, data_pages_eep,
                trail_pages);
    report.AddRow()
        .Set("phase", "cold")
        .Set("eps", eps)
        .Set("seqscan_pages", scan_pages)
        .Set("eep_pages", pages[0])
        .Set("spheres_pages", pages[1])
        .Set("eep_index", index_pages_eep)
        .Set("eep_data", data_pages_eep)
        .Set("subtrail_pages", trail_pages);
  }

  std::printf("\n# cold-cache ratios at eps=0: seqscan/eep = %.0fx, "
              "seqscan/subtrail = %.0fx\n",
              scan_pages / std::max(1.0, eep_pages_at_zero),
              scan_pages / std::max(1.0, trail_pages_at_zero));

  // Warm-cache variant: the paper's machine (512 MB) could buffer the whole
  // index, and its ~1000x ratio at eps=0 is only reachable when repeated
  // queries hit the buffer pool. Here the pool persists across queries and
  // we report *physical* index reads (buffer misses) + data page reads.
  engine->set_cold_cache_per_query(false);
  engine->set_prune_strategy(geom::PruneStrategy::kEepOnly);
  std::printf("\n# warm buffer pool (%zu pages): physical page reads per query\n",
              engine->pool().capacity());
  std::printf("%-8s %14s %14s %16s\n", "eps", "seqscan_pages", "eep_physical",
              "ratio_vs_scan");
  for (const double eps : bench::EpsSweep()) {
    // One warmup pass fills the pool, then measure.
    for (const auto& query : queries) {
      if (!engine->RangeQuery(query, eps).ok()) return 1;
    }
    std::uint64_t physical = 0;
    for (const auto& query : queries) {
      core::QueryStats stats;
      auto matches = engine->RangeQuery(query, eps, core::TransformCost{}, &stats);
      if (!matches.ok()) return 1;
      physical += stats.index_page_misses + stats.data_page_reads;
    }
    const double avg =
        static_cast<double>(physical) / static_cast<double>(queries.size());
    std::printf("%-8.2f %14.0f %14.2f %15.0fx\n", eps, scan_pages, avg,
                scan_pages / std::max(0.01, avg));
    report.AddRow()
        .Set("phase", "warm")
        .Set("eps", eps)
        .Set("seqscan_pages", scan_pages)
        .Set("eep_physical", avg)
        .Set("ratio_vs_scan", scan_pages / std::max(0.01, avg));
  }
  report.MaybeWrite(argc, argv);
  return 0;
}
