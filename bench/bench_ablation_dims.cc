// Ablation A2: index dimensionality (paper, Section 7).
//
// "According to the work in [2], three Fourier coefficients are sufficient to
// index time series data efficiently" and "the overlap increases
// significantly when the dimension of the R-tree is larger than 10". This
// bench sweeps the number of kept DFT coefficients fc = 1..8 (R-tree
// dimension 2..16) and reports query CPU, page reads, candidate counts
// (pruning precision improves with dimension) and the tree-overlap statistic
// (tree quality degrades with dimension) - the tension that makes fc = 3 the
// sweet spot.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);

  std::printf("# Ablation A2: DFT coefficient count (R-tree dimensionality)\n");
  std::printf("# dataset: %zu companies x %zu values; window 128; eps = 0.5\n",
              env.companies, env.values);
  bench::JsonReport report("ablation_dims", env);
  report.meta().Set("eps", 0.5);
  std::printf("\n%-4s %-5s %12s %12s %12s %12s %14s %10s\n", "fc", "dim",
              "cpu_ms", "pages", "candidates", "matches", "overlap", "height");

  const double eps = 0.5;
  for (std::size_t fc = 1; fc <= 8; ++fc) {
    core::EngineConfig config;
    config.reduced_dim = 2 * fc;
    // High dimensions shrink the page capacity below the paper's M = 20;
    // clamp M so every configuration still fits one node per 4 KiB page.
    const index::NodeCodec codec(config.reduced_dim);
    config.tree.max_entries =
        std::min<std::size_t>(20, codec.max_internal_entries() - 1);
    auto engine = bench::BuildEngine(config, market);
    const auto queries = bench::MakeQueries(market, env.queries, config.window);

    double cpu_seconds = 0.0;
    std::uint64_t pages = 0;
    std::uint64_t candidates = 0;
    std::uint64_t matches_total = 0;
    for (const auto& query : queries) {
      core::QueryStats stats;
      const bench::Timer timer;
      auto matches = engine->RangeQuery(query, eps, core::TransformCost{}, &stats);
      cpu_seconds += timer.Seconds();
      if (!matches.ok()) return 1;
      pages += stats.total_page_reads();
      candidates += stats.candidates;
      matches_total += stats.matches;
    }

    auto tree_stats = engine->tree().ComputeStats();
    if (!tree_stats.ok()) return 1;
    const double q = static_cast<double>(queries.size());
    std::printf("%-4zu %-5zu %12.3f %12.1f %12.1f %12.1f %14.3g %10zu\n", fc,
                2 * fc, 1e3 * cpu_seconds / q, static_cast<double>(pages) / q,
                static_cast<double>(candidates) / q,
                static_cast<double>(matches_total) / q,
                tree_stats->total_overlap_volume, tree_stats->height);
    report.AddRow()
        .Set("fc", fc)
        .Set("dim", static_cast<std::uint64_t>(2 * fc))
        .Set("cpu_ms", 1e3 * cpu_seconds / q)
        .Set("pages", static_cast<double>(pages) / q)
        .Set("candidates", static_cast<double>(candidates) / q)
        .Set("matches", static_cast<double>(matches_total) / q)
        .Set("overlap", tree_stats->total_overlap_volume)
        .Set("height", tree_stats->height);
  }
  std::printf("\n# expected: candidates fall steeply up to fc~3 then flatten,\n"
              "# while node volume/overlap and per-node CPU keep growing -\n"
              "# the paper's rationale for fc = 3 (dimension 6).\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
