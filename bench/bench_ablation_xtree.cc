// Ablation A8: X-tree supernodes vs plain R*-tree as dimensionality grows.
//
// Section 7 of the paper cites the X-tree finding that "the searching time
// increases as the overlap of the R-tree increases [and] the overlap
// increases significantly when the dimension of the R-tree is larger than
// 10" - their reason for reducing to dimension 6. This bench measures that
// degradation directly and shows how much of it the X-tree's supernodes
// (overlap-triggered refusal to split directory nodes) recover.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  bench::BenchEnv env = bench::GetBenchEnv();
  if (std::getenv("TSSS_COMPANIES") == nullptr && !env.full) env.companies = 100;
  const auto market = bench::MakeMarket(env);
  const double eps = 0.5;

  bench::JsonReport report("ablation_xtree", env);
  report.meta().Set("eps", eps);

  std::printf("# Ablation A8: supernodes (X-tree) vs plain R* across dims "
              "(eps = %.2f)\n", eps);
  std::printf("# dataset: %zu companies x %zu values; incremental inserts\n\n",
              env.companies, env.values);
  std::printf("%-6s %-6s %12s %12s %12s %12s %12s\n", "dim", "mode", "cpu_ms",
              "pages", "overlap", "supernodes", "node_pages");

  for (const std::size_t dim : {6u, 10u, 14u}) {
    for (const bool supernodes : {false, true}) {
      core::EngineConfig config;
      config.reduced_dim = dim;
      const index::NodeCodec codec(dim);
      config.tree.max_entries =
          std::min<std::size_t>(20, codec.max_internal_entries() - 1);
      config.tree.enable_supernodes = supernodes;
      auto engine = core::SearchEngine::Create(config);
      if (!engine.ok()) {
        std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
        return 1;
      }
      // Incremental insertion: supernodes only form during dynamic splits.
      for (const auto& series : market) {
        if (!(*engine)->AddSeries(series.name, series.values).ok()) return 1;
      }
      const auto queries =
          bench::MakeQueries(market, env.queries, config.window);

      double cpu_seconds = 0.0;
      std::uint64_t pages = 0;
      for (const auto& query : queries) {
        core::QueryStats stats;
        const bench::Timer timer;
        auto matches =
            (*engine)->RangeQuery(query, eps, core::TransformCost{}, &stats);
        cpu_seconds += timer.Seconds();
        if (!matches.ok()) return 1;
        pages += stats.total_page_reads();
      }
      auto tree_stats = (*engine)->tree().ComputeStats();
      if (!tree_stats.ok()) return 1;

      const double q = static_cast<double>(queries.size());
      std::printf("%-6zu %-6s %12.3f %12.1f %12.3g %12zu %12zu\n", dim,
                  supernodes ? "xtree" : "rstar", 1e3 * cpu_seconds / q,
                  static_cast<double>(pages) / q, tree_stats->total_overlap_volume,
                  tree_stats->supernode_count, tree_stats->node_pages);
      report.AddRow()
          .Set("part", "stock")
          .Set("dim", dim)
          .Set("mode", supernodes ? "xtree" : "rstar")
          .Set("cpu_ms", 1e3 * cpu_seconds / q)
          .Set("pages", static_cast<double>(pages) / q)
          .Set("overlap", tree_stats->total_overlap_volume)
          .Set("supernodes", tree_stats->supernode_count)
          .Set("node_pages", tree_stats->node_pages);
    }
  }
  std::printf("\n# note: on DFT-reduced stock data the R* splits stay below the\n"
              "# 20%% overlap threshold, so no supernodes form - the energy\n"
              "# concentration that makes fc=3 work also keeps splits clean.\n");

  // Part 2: the adversarial case the X-tree was built for - uniform points
  // in a high-dimensional cube, where every split overlaps badly.
  std::printf("\n# part 2: uniform random points (the X-tree's adversarial "
              "case), line queries, eps = 0.1\n");
  std::printf("%-6s %-6s %12s %12s %12s %12s %12s\n", "dim", "mode", "cpu_ms",
              "pages", "overlap", "supernodes", "node_pages");
  for (const std::size_t dim : {8u, 12u}) {
    for (const bool supernodes : {false, true}) {
      storage::MemPageStore store;
      storage::BufferPool pool(&store, 8192);
      index::RTreeConfig config;
      config.dim = dim;
      const index::NodeCodec codec(dim);
      config.max_entries =
          std::min<std::size_t>(20, codec.max_internal_entries() - 1);
      config.enable_supernodes = supernodes;
      config.supernode_overlap_fraction = 0.05;
      auto tree = index::RTree::Create(&pool, config);
      if (!tree.ok()) return 1;

      Rng rng(99);
      const std::size_t count = env.full ? 100000 : 30000;
      for (std::size_t i = 0; i < count; ++i) {
        geom::Vec p(dim);
        for (auto& x : p) x = rng.Uniform(0, 1);
        if (!(*tree)->Insert(p, i).ok()) return 1;
      }

      double cpu_seconds = 0.0;
      std::uint64_t pages = 0;
      const std::size_t num_queries = 40;
      for (std::size_t q = 0; q < num_queries; ++q) {
        geom::Vec p(dim), d(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          p[i] = rng.Uniform(0, 1);
          d[i] = rng.Uniform(-1, 1);
        }
        if (!pool.Clear().ok()) return 1;
        const std::uint64_t before = pool.metrics().logical_reads;
        const bench::Timer timer;
        auto result = (*tree)->LineQuery(geom::Line{p, d}, 0.1,
                                         geom::PruneStrategy::kEepOnly, nullptr);
        cpu_seconds += timer.Seconds();
        if (!result.ok()) return 1;
        pages += pool.metrics().logical_reads - before;
      }
      auto stats = (*tree)->ComputeStats();
      if (!stats.ok()) return 1;
      std::printf("%-6zu %-6s %12.3f %12.1f %12.3g %12zu %12zu\n", dim,
                  supernodes ? "xtree" : "rstar",
                  1e3 * cpu_seconds / static_cast<double>(num_queries),
                  static_cast<double>(pages) / static_cast<double>(num_queries),
                  stats->total_overlap_volume, stats->supernode_count,
                  stats->node_pages);
      report.AddRow()
          .Set("part", "uniform")
          .Set("dim", dim)
          .Set("mode", supernodes ? "xtree" : "rstar")
          .Set("cpu_ms", 1e3 * cpu_seconds / static_cast<double>(num_queries))
          .Set("pages",
               static_cast<double>(pages) / static_cast<double>(num_queries))
          .Set("overlap", stats->total_overlap_volume)
          .Set("supernodes", stats->supernode_count)
          .Set("node_pages", stats->node_pages);
    }
  }
  std::printf("\n# expected (part 2): supernodes form, directory overlap drops,\n"
              "# and line queries touch fewer pages despite wider nodes.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
