// Figure 4 reproduction: average CPU time per query vs error bound eps for
// the paper's three experiment sets:
//   set 1 - sequential scan (distance by Lemma 2, every window checked);
//   set 2 - R*-tree line search with Entering/Exiting-Points penetration;
//   set 3 - R*-tree line search with the Bounding-Spheres heuristic.
//
// Expected shape (paper, Section 7): the tree methods beat sequential scan
// across the whole eps range; tree CPU time grows with eps (more subtrees
// qualify); sequential scan is flat; and - the paper's surprise - the
// bounding-spheres heuristic is *slower* than plain EEP because R*-tree MBRs
// are long and thin (see bench_ablation_spheres for the why).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);

  core::EngineConfig config;  // paper defaults: n=128, DFT->6, M=20, m=8, p=6
  double build_seconds = 0.0;
  auto engine = bench::BuildEngine(config, market, &build_seconds);
  const auto queries = bench::MakeQueries(market, env.queries, config.window);

  bench::PrintHeader(
      "Figure 4: CPU Time vs Error Value of the 3 sets of experiments",
      "average CPU milliseconds per query", env, engine->num_indexed_windows());
  std::printf("# index build (STR bulk load): %.2f s\n", build_seconds);

  bench::JsonReport report("fig4_cpu_time", env);
  report.meta()
      .Set("build_seconds", build_seconds)
      .Set("indexed_windows", engine->num_indexed_windows());

  core::SequentialScanner scanner(&engine->dataset(), config.window);
  // The scan costs the same at every eps; a subset of queries bounds total
  // runtime without changing the average.
  const std::size_t scan_queries = std::min<std::size_t>(env.queries, 10);

  std::printf("\n%-8s %14s %14s %14s %12s\n", "eps", "seqscan_ms", "eep_ms",
              "spheres_ms", "avg_matches");
  for (const double eps : bench::EpsSweep()) {
    // Set 1: sequential scan.
    const bench::Timer scan_timer;
    for (std::size_t q = 0; q < scan_queries; ++q) {
      auto matches = scanner.RangeQuery(queries[q], eps);
      if (!matches.ok()) return 1;
    }
    const double scan_ms =
        1e3 * scan_timer.Seconds() / static_cast<double>(scan_queries);

    // Sets 2 and 3: identical tree, different penetration method.
    double tree_ms[2] = {0.0, 0.0};
    std::size_t total_matches = 0;
    const geom::PruneStrategy strategies[2] = {
        geom::PruneStrategy::kEepOnly, geom::PruneStrategy::kBoundingSpheres};
    for (int s = 0; s < 2; ++s) {
      engine->set_prune_strategy(strategies[s]);
      // Untimed warmup so allocator/cache state does not favour whichever
      // strategy happens to run second.
      for (std::size_t w = 0; w < std::min<std::size_t>(2, queries.size()); ++w) {
        if (!engine->RangeQuery(queries[w], eps).ok()) return 1;
      }
      std::size_t matches_this = 0;
      const bench::Timer timer;
      for (const auto& query : queries) {
        auto matches = engine->RangeQuery(query, eps);
        if (!matches.ok()) return 1;
        matches_this += matches->size();
      }
      tree_ms[s] = 1e3 * timer.Seconds() / static_cast<double>(queries.size());
      total_matches = matches_this;
    }

    std::printf("%-8.2f %14.3f %14.3f %14.3f %12zu\n", eps, scan_ms, tree_ms[0],
                tree_ms[1], total_matches / queries.size());
    report.AddRow()
        .Set("eps", eps)
        .Set("seqscan_ms", scan_ms)
        .Set("eep_ms", tree_ms[0])
        .Set("spheres_ms", tree_ms[1])
        .Set("avg_matches",
             static_cast<std::uint64_t>(total_matches / queries.size()));
  }
  std::printf("\n# shape check: tree columns << seqscan; spheres >= eep;\n"
              "# tree time grows with eps while seqscan stays flat.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
