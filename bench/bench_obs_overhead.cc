// Observability overhead check: the hot-path instrumentation (TraceSpan
// construction, telemetry ticks) must be near-free when no trace/telemetry
// sink is installed, and cheap enough to leave on when one is.
//
// Four measurements:
//   1. per-op cost of the *disabled* primitives (one thread-local read and a
//      branch each) - nanoseconds, measured over a tight loop;
//   2. per-query cost of the live-diagnostics path: the CPU-clock pair that
//      brackets a query for cost attribution, the RecordQueryCost registry
//      roll-up, and the armed-but-idle flight-recorder completion test;
//   3. end-to-end query latency in three modes: observability off (no stats,
//      no trace), stats+telemetry on, stats+telemetry+trace on;
//   4. three computed budgets as a percentage of the off-mode query time:
//      the disabled-path budget, the cost-attribution + armed-idle recorder
//      budget, and the profiler-off + rolling-window budget (the phase
//      mirror rides inside every TraceSpan and the serve path records one
//      rolling-window completion per query even with no profiler running).
//      The acceptance bar is < 2% each; the measured values are typically
//      orders of magnitude below it.

#include <optional>

#include "bench_common.h"
#include "tsss/obs/cost.h"
#include "tsss/obs/flight_recorder.h"
#include "tsss/obs/query_telemetry.h"
#include "tsss/obs/rolling.h"
#include "tsss/obs/trace.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);

  core::EngineConfig config;
  auto engine = bench::BuildEngine(config, market);
  const auto queries = bench::MakeQueries(market, env.queries, config.window);
  const double eps = 0.5;

  bench::PrintHeader("Observability overhead: disabled-path cost per query",
                     "instrumentation cost with tracing off vs on", env,
                     engine->num_indexed_windows());
  bench::JsonReport report("obs_overhead", env);
  report.meta().Set("eps", eps);

  // 1. Disabled primitives. No trace or telemetry is installed here, so both
  // calls take their early-out path. volatile keeps the loop from folding.
  constexpr std::uint64_t kOps = 20'000'000;
  double span_ns = 0.0;
  {
    const bench::Timer timer;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      obs::TraceSpan span("noop");
    }
    span_ns = 1e9 * timer.Seconds() / static_cast<double>(kOps);
  }
  double tick_ns = 0.0;
  {
    const bench::Timer timer;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      obs::TickMbrDistanceEvals();
      // The tick inlines to a thread-local read and branch; the barrier
      // stops the compiler from hoisting the read and folding the loop.
      asm volatile("" ::: "memory");
    }
    tick_ns = 1e9 * timer.Seconds() / static_cast<double>(kOps);
  }
  std::printf("\n# disabled primitives (%llu iterations):\n"
              "#   TraceSpan ctor+dtor, no trace installed : %6.2f ns\n"
              "#   telemetry tick, no telemetry installed  : %6.2f ns\n",
              static_cast<unsigned long long>(kOps), span_ns, tick_ns);
  report.meta()
      .Set("disabled_span_ns", span_ns)
      .Set("disabled_tick_ns", tick_ns);

  // 2. Live-diagnostics per-query primitives. The CPU-clock read may be a
  // real syscall on some kernels, so it gets a smaller loop; the recorder
  // test is one relaxed load plus a compare and can take the full count.
  constexpr std::uint64_t kClockOps = 2'000'000;
  double clock_ns = 0.0;
  {
    std::uint64_t sink = 0;
    const bench::Timer timer;
    for (std::uint64_t i = 0; i < kClockOps; ++i) {
      sink += obs::ThreadCpuNowUs();
    }
    clock_ns = 1e9 * timer.Seconds() / static_cast<double>(kClockOps);
    if (sink == 1) std::printf("#\n");  // keep the loop live
  }
  double should_ns = 0.0;
  {
    // Armed with an unreachable threshold: the per-completion test runs its
    // full armed path but never admits a capture — the serve-with---slow-ms
    // steady state when no query is slow.
    obs::FlightRecorder recorder(8);
    recorder.Arm(~0ull);
    std::uint64_t sink = 0;
    const bench::Timer timer;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      sink += recorder.ShouldCapture(i & 1023u, true) ? 1u : 0u;
      asm volatile("" ::: "memory");
    }
    should_ns = 1e9 * timer.Seconds() / static_cast<double>(kOps);
    if (sink != 0) return 1;  // nothing may qualify under ~0 threshold
  }
  constexpr std::uint64_t kRecordOps = 1'000'000;
  double record_ns = 0.0;
  {
    obs::QueryCost cost;
    cost.cpu_us = 3;
    cost.pages_hit = 2;
    cost.bytes_touched = 8192;
    const bench::Timer timer;
    for (std::uint64_t i = 0; i < kRecordOps; ++i) {
      obs::RecordQueryCost("kind", "bench", cost);
    }
    record_ns = 1e9 * timer.Seconds() / static_cast<double>(kRecordOps);
  }
  double rolling_ns = 0.0;
  {
    // Steady-state rolling-window record: one clock read, one epoch check
    // that passes, then the histogram's relaxed tallies. Rotation happens at
    // most a handful of times across the loop and is amortized away.
    obs::RollingWindow rolling;
    const bench::Timer timer;
    for (std::uint64_t i = 0; i < kRecordOps; ++i) {
      rolling.Record(1234 + (i & 255u), true, false);
    }
    rolling_ns = 1e9 * timer.Seconds() / static_cast<double>(kRecordOps);
    if (rolling.Window(60'000'000).count == 0) return 1;  // keep the loop live
  }
  std::printf("# live-diagnostics primitives:\n"
              "#   thread-CPU clock read                   : %6.2f ns\n"
              "#   armed-idle recorder completion test     : %6.2f ns\n"
              "#   RecordQueryCost registry roll-up        : %6.2f ns\n"
              "#   rolling-window completion record        : %6.2f ns\n",
              clock_ns, should_ns, record_ns, rolling_ns);
  report.meta()
      .Set("cpu_clock_ns", clock_ns)
      .Set("armed_idle_should_ns", should_ns)
      .Set("record_cost_ns", record_ns)
      .Set("rolling_record_ns", rolling_ns);

  // 2. End-to-end query latency per mode. A warmup pass first so all three
  // modes see the same cache state.
  for (const auto& query : queries) {
    if (!engine->RangeQuery(query, eps).ok()) return 1;
  }

  const double q = static_cast<double>(queries.size());
  double off_ms = 0.0;

  std::printf("\n%-14s %12s %14s\n", "mode", "query_ms", "overhead_pct");
  for (const char* mode : {"off", "stats", "stats+trace"}) {
    const bool want_stats = std::strcmp(mode, "off") != 0;
    const bool want_trace = std::strcmp(mode, "stats+trace") == 0;
    // Telemetry ticks per query in this mode (counted via stats so the
    // disabled-path budget below uses the real per-query op count).
    std::uint64_t ops_per_query = 0;

    const bench::Timer timer;
    for (const auto& query : queries) {
      core::QueryStats stats;
      obs::QueryTrace trace;
      std::optional<obs::ScopedQueryTrace> scoped;
      if (want_trace) scoped.emplace(&trace);
      auto matches = engine->RangeQuery(query, eps, core::TransformCost{},
                                        want_stats ? &stats : nullptr);
      if (!matches.ok()) return 1;
      if (want_stats) {
        ops_per_query += stats.telemetry.nodes_visited +
                         stats.telemetry.mbr_distance_evals +
                         stats.telemetry.leaf_candidates;
      }
    }
    const double ms = 1e3 * timer.Seconds() / q;
    if (std::strcmp(mode, "off") == 0) off_ms = ms;
    const double overhead_pct = off_ms > 0.0 ? 100.0 * (ms - off_ms) / off_ms : 0.0;
    std::printf("%-14s %12.3f %13.1f%%\n", mode, ms, overhead_pct);
    auto& row = report.AddRow();
    row.Set("mode", mode).Set("query_ms", ms).Set("overhead_pct", overhead_pct);
    if (want_stats) {
      row.Set("telemetry_ops_per_query",
              static_cast<double>(ops_per_query) / q);
    }

    // 4. Computed budgets as a share of the off-mode query time.
    if (std::strcmp(mode, "stats") == 0 && off_ms > 0.0) {
      // Disabled-path budget: what the same instrumentation costs when no
      // sink is installed.
      const double ops = static_cast<double>(ops_per_query) / q;
      // Each telemetry site is one tick; every span adds a ctor+dtor pair.
      const double disabled_ns = ops * tick_ns + 3.0 * span_ns;
      const double budget_pct = 100.0 * (disabled_ns / 1e6) / off_ms;
      std::printf("\n# disabled-path budget: %.0f ticks/query x %.2f ns "
                  "+ 3 spans = %.0f ns/query = %.4f%% of the off-mode "
                  "query (%0.3f ms)\n",
                  ops, tick_ns, disabled_ns, budget_pct, off_ms);
      std::printf("# acceptance: %s (< 2%% required)\n",
                  budget_pct < 2.0 ? "PASS" : "FAIL");
      report.meta()
          .Set("disabled_budget_pct", budget_pct)
          .Set("disabled_budget_pass", budget_pct < 2.0 ? 1 : 0);
      if (budget_pct >= 2.0) {
        report.MaybeWrite(argc, argv);
        return 1;
      }

      // Cost-attribution + armed-idle recorder budget: what `serve` with
      // --slow-ms adds to every completed query that is NOT slow — the
      // clock pair bracketing the query, one registry roll-up, and the
      // recorder's capture test.
      const double cost_ns = 2.0 * clock_ns + record_ns + should_ns;
      const double cost_pct = 100.0 * (cost_ns / 1e6) / off_ms;
      std::printf("# cost+recorder budget: 2 clock reads + 1 roll-up + 1 "
                  "capture test = %.0f ns/query = %.4f%% of the off-mode "
                  "query\n",
                  cost_ns, cost_pct);
      std::printf("# acceptance: %s (< 2%% required)\n",
                  cost_pct < 2.0 ? "PASS" : "FAIL");
      report.meta()
          .Set("cost_budget_pct", cost_pct)
          .Set("cost_budget_pass", cost_pct < 2.0 ? 1 : 0);
      if (cost_pct >= 2.0) {
        report.MaybeWrite(argc, argv);
        return 1;
      }

      // Profiler-off + rolling-window budget: what this build's phase
      // mirror and the serve path's SLO bookkeeping add to a query when no
      // profiler is running — the mirror's push/pop already rides inside
      // every span measured above, plus one rolling-window record per
      // completion.
      const double profiler_ns = 3.0 * span_ns + rolling_ns;
      const double profiler_pct = 100.0 * (profiler_ns / 1e6) / off_ms;
      std::printf("# profiler-off budget: 3 phase-mirror spans + 1 rolling "
                  "record = %.0f ns/query = %.4f%% of the off-mode query\n",
                  profiler_ns, profiler_pct);
      std::printf("# acceptance: %s (< 2%% required)\n",
                  profiler_pct < 2.0 ? "PASS" : "FAIL");
      report.meta()
          .Set("profiler_budget_pct", profiler_pct)
          .Set("profiler_budget_pass", profiler_pct < 2.0 ? 1 : 0);
      if (profiler_pct >= 2.0) {
        report.MaybeWrite(argc, argv);
        return 1;
      }
    }
  }

  std::printf("\n# expected: off-mode instrumentation is a thread-local read\n"
              "# and branch per site - far below 2%% of any real query.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
