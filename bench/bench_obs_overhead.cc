// Observability overhead check: the hot-path instrumentation (TraceSpan
// construction, telemetry ticks) must be near-free when no trace/telemetry
// sink is installed, and cheap enough to leave on when one is.
//
// Three measurements:
//   1. per-op cost of the *disabled* primitives (one thread-local read and a
//      branch each) - nanoseconds, measured over a tight loop;
//   2. end-to-end query latency in three modes: observability off (no stats,
//      no trace), stats+telemetry on, stats+telemetry+trace on;
//   3. the disabled-path budget: (disabled ops per query) x (cost per op)
//      as a percentage of the off-mode query time. The acceptance bar is
//      < 2%; the measured value is typically orders of magnitude below it.

#include <optional>

#include "bench_common.h"
#include "tsss/obs/query_telemetry.h"
#include "tsss/obs/trace.h"

int main(int argc, char** argv) {
  using namespace tsss;
  const bench::BenchEnv env = bench::GetBenchEnv();
  const auto market = bench::MakeMarket(env);

  core::EngineConfig config;
  auto engine = bench::BuildEngine(config, market);
  const auto queries = bench::MakeQueries(market, env.queries, config.window);
  const double eps = 0.5;

  bench::PrintHeader("Observability overhead: disabled-path cost per query",
                     "instrumentation cost with tracing off vs on", env,
                     engine->num_indexed_windows());
  bench::JsonReport report("obs_overhead", env);
  report.meta().Set("eps", eps);

  // 1. Disabled primitives. No trace or telemetry is installed here, so both
  // calls take their early-out path. volatile keeps the loop from folding.
  constexpr std::uint64_t kOps = 20'000'000;
  double span_ns = 0.0;
  {
    const bench::Timer timer;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      obs::TraceSpan span("noop");
    }
    span_ns = 1e9 * timer.Seconds() / static_cast<double>(kOps);
  }
  double tick_ns = 0.0;
  {
    const bench::Timer timer;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      obs::TickMbrDistanceEvals();
      // The tick inlines to a thread-local read and branch; the barrier
      // stops the compiler from hoisting the read and folding the loop.
      asm volatile("" ::: "memory");
    }
    tick_ns = 1e9 * timer.Seconds() / static_cast<double>(kOps);
  }
  std::printf("\n# disabled primitives (%llu iterations):\n"
              "#   TraceSpan ctor+dtor, no trace installed : %6.2f ns\n"
              "#   telemetry tick, no telemetry installed  : %6.2f ns\n",
              static_cast<unsigned long long>(kOps), span_ns, tick_ns);
  report.meta()
      .Set("disabled_span_ns", span_ns)
      .Set("disabled_tick_ns", tick_ns);

  // 2. End-to-end query latency per mode. A warmup pass first so all three
  // modes see the same cache state.
  for (const auto& query : queries) {
    if (!engine->RangeQuery(query, eps).ok()) return 1;
  }

  const double q = static_cast<double>(queries.size());
  double off_ms = 0.0;

  std::printf("\n%-14s %12s %14s\n", "mode", "query_ms", "overhead_pct");
  for (const char* mode : {"off", "stats", "stats+trace"}) {
    const bool want_stats = std::strcmp(mode, "off") != 0;
    const bool want_trace = std::strcmp(mode, "stats+trace") == 0;
    // Telemetry ticks per query in this mode (counted via stats so the
    // disabled-path budget below uses the real per-query op count).
    std::uint64_t ops_per_query = 0;

    const bench::Timer timer;
    for (const auto& query : queries) {
      core::QueryStats stats;
      obs::QueryTrace trace;
      std::optional<obs::ScopedQueryTrace> scoped;
      if (want_trace) scoped.emplace(&trace);
      auto matches = engine->RangeQuery(query, eps, core::TransformCost{},
                                        want_stats ? &stats : nullptr);
      if (!matches.ok()) return 1;
      if (want_stats) {
        ops_per_query += stats.telemetry.nodes_visited +
                         stats.telemetry.mbr_distance_evals +
                         stats.telemetry.leaf_candidates;
      }
    }
    const double ms = 1e3 * timer.Seconds() / q;
    if (std::strcmp(mode, "off") == 0) off_ms = ms;
    const double overhead_pct = off_ms > 0.0 ? 100.0 * (ms - off_ms) / off_ms : 0.0;
    std::printf("%-14s %12.3f %13.1f%%\n", mode, ms, overhead_pct);
    auto& row = report.AddRow();
    row.Set("mode", mode).Set("query_ms", ms).Set("overhead_pct", overhead_pct);
    if (want_stats) {
      row.Set("telemetry_ops_per_query",
              static_cast<double>(ops_per_query) / q);
    }

    // 3. Disabled-path budget: what the same instrumentation costs when no
    // sink is installed, as a share of the off-mode query time.
    if (std::strcmp(mode, "stats") == 0 && off_ms > 0.0) {
      const double ops = static_cast<double>(ops_per_query) / q;
      // Each telemetry site is one tick; every span adds a ctor+dtor pair.
      const double disabled_ns = ops * tick_ns + 3.0 * span_ns;
      const double budget_pct = 100.0 * (disabled_ns / 1e6) / off_ms;
      std::printf("\n# disabled-path budget: %.0f ticks/query x %.2f ns "
                  "+ 3 spans = %.0f ns/query = %.4f%% of the off-mode "
                  "query (%0.3f ms)\n",
                  ops, tick_ns, disabled_ns, budget_pct, off_ms);
      std::printf("# acceptance: %s (< 2%% required)\n",
                  budget_pct < 2.0 ? "PASS" : "FAIL");
      report.meta()
          .Set("disabled_budget_pct", budget_pct)
          .Set("disabled_budget_pass", budget_pct < 2.0 ? 1 : 0);
      if (budget_pct >= 2.0) {
        report.MaybeWrite(argc, argv);
        return 1;
      }
    }
  }

  std::printf("\n# expected: off-mode instrumentation is a thread-local read\n"
              "# and branch per site - far below 2%% of any real query.\n");
  report.MaybeWrite(argc, argv);
  return 0;
}
